"""PosMap Lookaside Buffer: fewer position-map ops, identical behaviour.

The PLB is a bounded LRU over recent position-map block labels.  Serving
a hit leaves the cached block unmoved in its ORAM (no path op, no remap),
so its own label at the level above stays accurate — nothing above the hit
level needs touching.  These tests pin the load-bearing invariants:

* logical results, payload contents and the data ORAM's full state are
  independent of the PLB capacity (the buffer only shrinks the chain's
  physical op sequence);
* the RNG stream is untouched by the hit path (fresh leaves are drawn
  upfront at every level on hit and miss alike);
* capacity 1 reproduces the legacy ``coalesce_position_ops`` memo
  bit-for-bit, and capacity 0 reproduces the uncached baseline;
* the looped ``access`` path and the fused ``access_many`` path agree
  with the PLB on;
* dynamic super-block cohort moves invalidate cached labels (the stale
  -label regression the coherence hooks exist for);
* the compressed position-map layout shrinks the chain without changing
  logical results.
"""

import random

import pytest

from repro.backends import OramSpec, build_oram, storage_backends
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.plb import PosMapLookaside
from repro.core.types import Operation
from repro.errors import ConfigurationError
from tests.test_access_many import fingerprint, oram_fingerprint, random_trace

STACKS = [
    name
    for name in ("flat", "plain", "encrypted", "numpy-flat")
    if name in storage_backends()
]

#: Stacks with a fused chain op (live label-list references) — the only
#: ones the PLB engages on; the generic stacks stay inert like coalescing.
FUSED_STACKS = [name for name in STACKS if name in ("flat", "numpy-flat")]

DYNAMIC_KNOBS = dict(
    dynamic_super_blocks=True,
    super_block_window=64,
    super_block_merge_threshold=1,
    super_block_split_threshold=3,
    super_block_max_size=4,
)


def _local_trace(working_set: int, length: int, seed: int) -> list[int]:
    """Sequential runs with occasional jumps — position-map locality."""
    rng = random.Random(seed)
    address = rng.randrange(1, working_set + 1)
    trace = []
    for _ in range(length):
        if rng.random() < 0.1:
            address = rng.randrange(1, working_set + 1)
        else:
            address = address % working_set + 1
        trace.append(address)
    return trace


def _hierarchy(z: int = 3, stash_capacity: int | None = 60,
               working_set: int = 512) -> HierarchyConfig:
    data = ORAMConfig(
        working_set_blocks=working_set, z=z, block_bytes=64,
        stash_capacity=stash_capacity,
    )
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=128,
    )


def _spec(**kwargs) -> OramSpec:
    return OramSpec(protocol="hierarchical", storage="flat", **kwargs)


class TestLookasideUnit:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PosMapLookaside(3, 0)

    def test_lru_eviction_order(self):
        plb = PosMapLookaside(2, 2)
        plb.install(1, 10, [1])
        plb.install(1, 20, [2])
        assert plb.lookup(1, 10) == [1]  # promotes 10 over 20
        plb.install(1, 30, [3])  # evicts 20, the LRU entry
        assert plb.lookup(1, 20) is None
        assert plb.lookup(1, 10) == [1]
        assert plb.lookup(1, 30) == [3]
        assert plb.hits == 3 and plb.misses == 1

    def test_reinstall_refreshes_without_eviction(self):
        plb = PosMapLookaside(2, 2)
        plb.install(1, 10, [1])
        plb.install(1, 20, [2])
        plb.install(1, 10, [9])  # refresh, nothing evicted
        assert plb.lookup(1, 20) == [2]
        assert plb.lookup(1, 10) == [9]

    def test_invalidate_and_range(self):
        plb = PosMapLookaside(2, 4)
        for block in (1, 2, 3, 4):
            plb.install(1, block, [block])
        plb.invalidate(1, 2)
        plb.invalidate(1, 99)  # absent: no-op
        plb.invalidate_range(1, 3, 4)
        assert plb.lookup(1, 1) == [1]
        for block in (2, 3, 4):
            assert plb.lookup(1, block) is None

    def test_clear_drops_everything_keeps_counters(self):
        plb = PosMapLookaside(3, 2)
        plb.install(1, 1, [1])
        plb.install(2, 1, [2])
        plb.lookup(1, 1)
        plb.clear()
        assert plb.lookup(1, 1) is None
        assert plb.lookup(2, 1) is None
        assert plb.hits == 1


class TestSpecValidation:
    def test_flat_spec_rejects_plb(self):
        with pytest.raises(ConfigurationError):
            OramSpec(protocol="flat", plb_entries_per_level=4)

    def test_flat_spec_rejects_compressed_map(self):
        with pytest.raises(ConfigurationError):
            OramSpec(protocol="flat", compressed_position_map=True)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec(plb_entries_per_level=-1)

    def test_plb_composes_with_dynamic_super_blocks(self):
        # Unlike coalesce_position_ops (fused-walk-only, rejected), the
        # PLB serves the per-level walk too — the combination is legal.
        spec = _spec(plb_entries_per_level=4, **DYNAMIC_KNOBS)
        oram = build_oram(spec, _hierarchy(), seed=3)
        assert oram.plb_active

    def test_plb_off_by_default(self):
        oram = build_oram(_spec(), _hierarchy(), seed=2)
        assert oram.plb is None
        assert not oram.plb_active
        assert oram.plb_entries_per_level == 0


class TestPlbDifferential:
    @pytest.mark.parametrize("storage", STACKS)
    def test_plb_reduces_ops_with_unchanged_results(self, storage):
        hierarchy = _hierarchy()
        trace = _local_trace(512, 2500, seed=4)
        payload = {address: bytes([address % 256]) for address in set(trace)}
        plain = build_oram(
            OramSpec(protocol="hierarchical", storage=storage), hierarchy, seed=6
        )
        cached = build_oram(
            OramSpec(
                protocol="hierarchical", storage=storage,
                plb_entries_per_level=8,
            ),
            hierarchy,
            seed=6,
        )
        if storage in ("plain", "encrypted"):
            # No fused chain op, no live label references: the PLB stays
            # inert on these stacks, exactly like coalescing.
            assert not cached.plb_active
            cached.access_many(trace)
            assert sum(o.stats.plb_hits for o in cached.orams) == 0
            return
        plain_results = [
            plain.access_many(trace[:1250]),
            plain.access_many(trace[1250:], Operation.WRITE, b"x"),
        ]
        cached_results = [
            cached.access_many(trace[:1250]),
            cached.access_many(trace[1250:], Operation.WRITE, b"x"),
        ]
        assert [(r.accesses, r.found) for r in plain_results] == [
            (r.accesses, r.found) for r in cached_results
        ]
        # Every PLB hit is a saved position-map path op, and the per-ORAM
        # counters agree with the object-level counters.
        plb = cached.plb
        coalesced = sum(o.stats.coalesced_ops for o in cached.orams)
        hits = sum(o.stats.plb_hits for o in cached.orams)
        misses = sum(o.stats.plb_misses for o in cached.orams)
        assert hits > 0
        assert coalesced >= hits
        assert (plb.hits, plb.misses) == (hits, misses)
        plain_pm_ops = sum(o.stats.real_accesses for o in plain.orams[1:])
        cached_pm_ops = sum(o.stats.real_accesses for o in cached.orams[1:])
        assert plain_pm_ops - cached_pm_ops == coalesced
        assert cached_pm_ops == misses
        # The data ORAM sees the identical access sequence either way.
        assert plain.orams[0].stats.plb_hits == 0
        assert oram_fingerprint(plain.orams[0]) == oram_fingerprint(cached.orams[0])
        # Block conservation per ORAM against the uncached twin.
        for plain_oram, cached_oram in zip(plain.orams, cached.orams):
            assert (
                cached_oram.stash_occupancy + cached_oram.storage.occupancy()
                == plain_oram.stash_occupancy + plain_oram.storage.occupancy()
            )
        for address in sorted(payload):
            assert cached.read(address).data == plain.read(address).data

    @pytest.mark.parametrize("storage", FUSED_STACKS)
    def test_rng_stream_untouched_by_hit_path(self, storage):
        # Fresh leaves are drawn upfront at every level on hit and miss
        # alike, so the RNG stream is capacity-independent.  Unbounded
        # stashes: no pressure-driven draws that could depend on op counts.
        hierarchy = _hierarchy(stash_capacity=None)
        trace = _local_trace(512, 1500, seed=8)
        spec = OramSpec(protocol="hierarchical", storage=storage)
        orams = [
            build_oram(
                spec.with_updates(plb_entries_per_level=capacity), hierarchy, seed=9
            )
            for capacity in (0, 1, 4, 8)
        ]
        founds = []
        for oram in orams:
            founds.append(oram.access_many(trace).found)
        assert len(set(founds)) == 1
        baseline = orams[0]
        for oram in orams[1:]:
            assert oram._rng.getstate() == baseline._rng.getstate()
            assert oram_fingerprint(oram.orams[0]) == oram_fingerprint(
                baseline.orams[0]
            )
        # Larger capacities never hit less.
        hit_counts = [sum(o.stats.plb_hits for o in oram.orams) for oram in orams]
        assert hit_counts[0] == 0
        assert hit_counts == sorted(hit_counts)
        assert hit_counts[-1] > 0

    @pytest.mark.parametrize("storage", FUSED_STACKS)
    def test_looped_access_matches_access_many(self, storage):
        # With the PLB on, the per-access chain walk and the fused batch
        # walk share one cache and stay bit-identical.
        hierarchy = _hierarchy()
        spec = OramSpec(
            protocol="hierarchical", storage=storage, plb_entries_per_level=8
        )
        trace = _local_trace(512, 900, seed=5)
        looped = build_oram(spec, hierarchy, seed=7)
        fused = build_oram(spec, hierarchy, seed=7)
        for address in trace:
            looped.access(address)
        fused.access_many(trace)
        assert fingerprint(looped) == fingerprint(fused)
        assert looped._rng.getstate() == fused._rng.getstate()
        assert sum(o.stats.plb_hits for o in looped.orams) == sum(
            o.stats.plb_hits for o in fused.orams
        )
        assert sum(o.stats.plb_hits for o in fused.orams) > 0

    def test_capacity_one_matches_coalesce_flag(self):
        # The legacy flag is now exactly a capacity-1 PLB.
        hierarchy = _hierarchy()
        trace = _local_trace(512, 1500, seed=3)
        legacy = build_oram(_spec(coalesce_position_ops=True), hierarchy, seed=4)
        plb_one = build_oram(_spec(plb_entries_per_level=1), hierarchy, seed=4)
        legacy.access_many(trace)
        plb_one.access_many(trace)
        assert fingerprint(legacy) == fingerprint(plb_one)
        assert legacy._rng.getstate() == plb_one._rng.getstate()
        assert sum(o.stats.coalesced_ops for o in legacy.orams) == sum(
            o.stats.coalesced_ops for o in plb_one.orams
        )

    def test_plb_off_matches_baseline_bit_identical(self):
        hierarchy = _hierarchy()
        trace = random_trace(512, 800, seed=5)
        baseline = build_oram(_spec(), hierarchy, seed=7)
        plb_off = build_oram(_spec(plb_entries_per_level=0), hierarchy, seed=7)
        baseline.access_many(trace)
        plb_off.access_many(trace)
        assert fingerprint(baseline) == fingerprint(plb_off)
        assert baseline._rng.getstate() == plb_off._rng.getstate()

    def test_eviction_storm_keeps_results_identical(self):
        # A tight data stash forces hierarchy-wide dummy rounds; the PLB
        # must not disturb the data ORAM's trigger sequence.
        data = ORAMConfig(
            working_set_blocks=1024, z=2, block_bytes=128, stash_capacity=40
        )
        hierarchy = HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            onchip_position_map_limit_bytes=256,
        )
        trace = random_trace(1024, 6000, seed=9)
        plain = build_oram(_spec(), hierarchy, seed=7)
        cached = build_oram(_spec(plb_entries_per_level=8), hierarchy, seed=7)
        plain_result = plain.access_many(trace)
        cached_result = cached.access_many(trace)
        assert plain.stats.dummy_accesses > 0, "config must exercise dummy rounds"
        assert (plain_result.accesses, plain_result.found) == (
            cached_result.accesses,
            cached_result.found,
        )
        assert sum(o.stats.plb_hits for o in cached.orams) > 0
        for plain_oram, cached_oram in zip(plain.orams, cached.orams):
            assert (
                cached_oram.stash_occupancy + cached_oram.storage.occupancy()
                == plain_oram.stash_occupancy + plain_oram.storage.occupancy()
            )


def _merge_trace(working_set: int, length: int, seed: int) -> list[int]:
    """Sequential runs mixed with uniform accesses (merge-friendly)."""
    rng = random.Random(seed)
    trace = []
    while len(trace) < length:
        if rng.random() < 0.7:
            start = rng.randrange(1, max(2, working_set - 4))
            trace.extend(range(start, start + 4))
        else:
            trace.append(rng.randrange(1, working_set + 1))
    return trace[:length]


class TestDynamicSuperBlockInteraction:
    """Cohort moves retarget data blocks behind the chain's back; the
    invalidation hooks must drop every cached label they touch.  Before
    the hooks, a cached position-map block could keep serving the
    pre-move leaf — a stale label makes the data lookup miss (or worse),
    so payload divergence from the uncached twin is the regression
    signal."""

    @pytest.mark.parametrize("capacity", [1, 8])
    def test_cohort_moves_never_serve_stale_labels(self, capacity):
        hierarchy = _hierarchy(stash_capacity=200)
        trace = _merge_trace(512, 3000, seed=11)
        payload = {address: bytes([address % 251]) for address in set(trace)}
        plain = build_oram(_spec(**DYNAMIC_KNOBS), hierarchy, seed=13)
        cached = build_oram(
            _spec(plb_entries_per_level=capacity, **DYNAMIC_KNOBS),
            hierarchy,
            seed=13,
        )
        assert cached.plb_active
        plain_found = cached_found = 0
        for address in trace:
            plain_found += plain.access(address, Operation.WRITE, payload[address]).found
            cached_found += cached.access(
                address, Operation.WRITE, payload[address]
            ).found
        # The stale-label failure mode is a missed lookup: found parity
        # plus full payload read-back pin the coherence hooks.
        assert plain_found == cached_found
        assert plain.data_oram.stats.super_block_merges > 0, (
            "trace must exercise cohort moves"
        )
        assert sum(o.stats.plb_hits for o in cached.orams) > 0
        for address in sorted(payload):
            assert cached.read(address).data == payload[address]

    def test_access_many_and_extract_stay_coherent(self, capacity=4):
        hierarchy = _hierarchy(stash_capacity=200)
        trace = _merge_trace(512, 2000, seed=17)
        plain = build_oram(_spec(**DYNAMIC_KNOBS), hierarchy, seed=19)
        cached = build_oram(
            _spec(plb_entries_per_level=capacity, **DYNAMIC_KNOBS),
            hierarchy,
            seed=19,
        )
        plain_result = plain.access_many(trace)
        cached_result = cached.access_many(trace)
        assert (plain_result.accesses, plain_result.found) == (
            cached_result.accesses,
            cached_result.found,
        )
        assert plain.data_oram.stats.super_block_merges > 0
        # extract() retargets the survivors of a split cohort; the next
        # access must see the fresh labels.
        victims = sorted(set(trace))[:32]
        for address in victims:
            assert (cached.extract(address) is None) == (
                plain.extract(address) is None
            )
        replay = [a for a in trace if a not in set(victims)][:400]
        assert cached.access_many(replay).found == plain.access_many(replay).found


class TestCompressedPositionMap:
    def test_compressed_layout_shrinks_chain(self):
        data = ORAMConfig(
            working_set_blocks=4096, z=3, block_bytes=64, stash_capacity=60
        )
        hierarchy = HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            onchip_position_map_limit_bytes=64,
        )
        plain = build_oram(_spec(), hierarchy, seed=3)
        compressed = build_oram(_spec(compressed_position_map=True), hierarchy, seed=3)
        assert compressed.num_orams < plain.num_orams

    def test_compressed_results_match_uncompressed(self):
        hierarchy = _hierarchy(working_set=1024)
        trace = _local_trace(1024, 1200, seed=6)
        payload = {address: bytes([address % 256]) for address in set(trace)}
        plain = build_oram(_spec(), hierarchy, seed=8)
        compressed = build_oram(
            _spec(compressed_position_map=True, plb_entries_per_level=4),
            hierarchy,
            seed=8,
        )
        plain_found = sum(
            plain.access(a, Operation.WRITE, payload[a]).found for a in trace
        )
        compressed_found = sum(
            compressed.access(a, Operation.WRITE, payload[a]).found for a in trace
        )
        # found depends only on the address history, not the chain depth.
        assert plain_found == compressed_found
        for address in sorted(payload):
            assert compressed.read(address).data == payload[address]

    def test_config_packs_more_labels_per_block(self):
        from dataclasses import replace

        hierarchy = _hierarchy(working_set=4096)
        packed = replace(hierarchy, compressed_position_map=True)
        child = hierarchy.data_oram
        assert packed.labels_per_position_block(
            child
        ) >= hierarchy.labels_per_position_block(child)


class TestSweepAxis:
    def test_measure_plb_point_counters_are_consistent(self):
        from repro.analysis.sweep import measure_plb_point

        hierarchy = _hierarchy()
        base = measure_plb_point(hierarchy, 0, 600, trace_kind="sequential")
        cached = measure_plb_point(hierarchy, 8, 600, trace_kind="sequential")
        assert base.accesses == cached.accesses
        assert base.plb_hits == 0 and base.coalesced_ops == 0
        assert cached.plb_hits > 0
        assert base.pm_ops - cached.pm_ops == cached.coalesced_ops
        assert cached.pm_ops == cached.plb_misses
        assert 0.0 < cached.hit_rate <= 1.0
        assert cached.pm_ops_saved_per_access > base.pm_ops_saved_per_access
