"""Bucket encryption scheme tests (Section 2.2)."""

import random

import pytest

from repro.crypto.bucket_encryption import (
    CounterBucketCipher,
    StrawmanBucketCipher,
    counter_bucket_bits,
    strawman_bucket_bits,
)
from repro.crypto.keys import ProcessorKey
from repro.errors import EncryptionError


@pytest.fixture
def key() -> ProcessorKey:
    return ProcessorKey(seed=7)


class TestCounterScheme:
    def test_roundtrip(self, key):
        cipher = CounterBucketCipher(key)
        blocks = [b"block-one", b"block-two-longer", b""]
        ciphertext = cipher.encrypt(3, blocks)
        assert cipher.decrypt(3, ciphertext) == blocks

    def test_randomized_reencryption_changes_ciphertext(self, key):
        cipher = CounterBucketCipher(key)
        blocks = [b"same plaintext"]
        first = cipher.encrypt(5, blocks)
        second = cipher.encrypt(5, blocks)
        assert first != second
        assert cipher.decrypt(5, first) == blocks
        assert cipher.decrypt(5, second) == blocks

    def test_counter_increments_per_bucket(self, key):
        cipher = CounterBucketCipher(key)
        cipher.encrypt(2, [b"a"])
        cipher.encrypt(2, [b"b"])
        cipher.encrypt(9, [b"c"])
        assert cipher.current_counter(2) == 2
        assert cipher.current_counter(9) == 1
        assert cipher.current_counter(100) == 0

    def test_distinct_buckets_have_distinct_pads(self, key):
        # Same plaintext, same counter value, different BucketID must
        # produce different ciphertext bodies (the BucketID seeds the pad).
        cipher = CounterBucketCipher(key)
        body_a = cipher.encrypt(1, [b"identical"])[8:]
        body_b = cipher.encrypt(2, [b"identical"])[8:]
        assert body_a != body_b

    def test_truncated_ciphertext_rejected(self, key):
        cipher = CounterBucketCipher(key)
        with pytest.raises(EncryptionError):
            cipher.decrypt(0, b"abc")

    def test_corrupted_length_field_rejected(self, key):
        cipher = CounterBucketCipher(key)
        ciphertext = bytearray(cipher.encrypt(0, [b"payload"]))
        ciphertext = ciphertext[: len(ciphertext) // 2]
        with pytest.raises(EncryptionError):
            cipher.decrypt(0, bytes(ciphertext))

    def test_different_runs_use_different_keys(self):
        # A fresh processor key per program start defends replay attacks.
        blocks = [b"data"]
        run1 = CounterBucketCipher(ProcessorKey(seed=1)).encrypt(0, blocks)
        run2 = CounterBucketCipher(ProcessorKey(seed=2)).encrypt(0, blocks)
        assert run1 != run2


class TestStrawmanScheme:
    def test_roundtrip(self, key):
        cipher = StrawmanBucketCipher(key, rng=random.Random(1))
        blocks = [b"alpha", b"beta", b"gamma-gamma"]
        ciphertext = cipher.encrypt(4, blocks)
        assert cipher.decrypt(4, ciphertext) == blocks

    def test_randomized_reencryption_changes_ciphertext(self, key):
        cipher = StrawmanBucketCipher(key, rng=random.Random(2))
        first = cipher.encrypt(1, [b"x"])
        second = cipher.encrypt(1, [b"x"])
        assert first != second

    def test_truncated_ciphertext_rejected(self, key):
        cipher = StrawmanBucketCipher(key, rng=random.Random(3))
        ciphertext = cipher.encrypt(0, [b"payload-bytes"])
        with pytest.raises(EncryptionError):
            cipher.decrypt(0, ciphertext[:10])


class TestSizeFormulas:
    def test_counter_bucket_bits_formula(self):
        # M = Z (L + U + B) + 64  (Section 2.2.2)
        assert counter_bucket_bits(4, 23, 25, 1024) == 4 * (23 + 25 + 1024) + 64

    def test_strawman_bucket_bits_formula(self):
        # M = Z (128 + L + U + B)  (Section 2.2.1)
        assert strawman_bucket_bits(4, 23, 25, 1024) == 4 * (128 + 23 + 25 + 1024)

    def test_counter_scheme_saves_per_block_overhead(self):
        # The counter scheme replaces 128 bits per block with 64 per bucket.
        z, l, u, b = 4, 23, 25, 1024
        saving = strawman_bucket_bits(z, l, u, b) - counter_bucket_bits(z, l, u, b)
        assert saving == z * 128 - 64

    def test_class_formulas_match_module_functions(self):
        expected_counter = counter_bucket_bits(3, 20, 22, 256)
        assert CounterBucketCipher.bucket_bits(3, 20, 22, 256) == expected_counter
        expected_strawman = strawman_bucket_bits(3, 20, 22, 256)
        assert StrawmanBucketCipher.bucket_bits(3, 20, 22, 256) == expected_strawman


class TestProcessorKey:
    def test_seeded_keys_are_reproducible(self):
        assert ProcessorKey(seed=5) == ProcessorKey(seed=5)

    def test_different_seeds_differ(self):
        assert ProcessorKey(seed=5) != ProcessorKey(seed=6)

    def test_key_length(self):
        assert len(ProcessorKey(seed=0).key_bytes) == 16

    def test_unseeded_keys_are_random(self):
        assert ProcessorKey() != ProcessorKey()

    def test_hashable(self):
        assert len({ProcessorKey(seed=1), ProcessorKey(seed=1), ProcessorKey(seed=2)}) == 2
