"""Fault injection: storage faults must be caught, process faults retried."""

import glob
import os
import random

import pytest

from repro.core.config import ORAMConfig
from repro.core.path_oram import PathORAM
from repro.core.tree import EncryptedTreeStorage
from repro.core.types import Operation
from repro.crypto.bucket_encryption import CounterBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.errors import IntegrityError, StashOverflowError
from repro.faults import FAULT_KINDS, FaultInjector, chaos_kill_point
from repro.integrity.storage import IntegrityVerifiedStorage
from repro.runner import ExperimentRunner, ExperimentSpec, RetryPolicy


def _faulty_stack(injector_builder=None, seed=3):
    """Integrity-verified ORAM whose device storage may inject faults."""
    config = ORAMConfig(working_set_blocks=24)
    cipher = CounterBucketCipher(ProcessorKey(seed=1))
    device = EncryptedTreeStorage(config, cipher)
    injector = injector_builder(device) if injector_builder is not None else None
    storage = IntegrityVerifiedStorage(config, cipher, inner=injector)
    oram = PathORAM(config, storage=storage, rng=random.Random(seed))
    return oram, injector


def _run(oram, accesses=250):
    for i in range(accesses):
        oram.access(1 + i % 24, Operation.WRITE, data=bytes([i % 251]))


class TestFaultInjector:
    def test_no_faults_is_transparent(self):
        plain, _ = _faulty_stack()
        wrapped, injector = _faulty_stack(lambda device: FaultInjector(device))
        _run(plain)
        _run(wrapped)
        assert wrapped.stats.fingerprint() == plain.stats.fingerprint()
        assert injector.injected == [] and injector.pending == 0
        assert injector.read_ops > 0 and injector.write_ops > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_faults": {10: "bit_flip"}},
            {"read_faults": {25: "stale_replay"}},
            {"write_faults": {12}},
        ],
        ids=["bit_flip", "stale_replay", "drop_write"],
    )
    def test_each_kind_raises_integrity_error(self, kwargs):
        oram, injector = _faulty_stack(lambda device: FaultInjector(device, **kwargs))
        with pytest.raises(IntegrityError):
            _run(oram)
        assert len(injector.injected) == 1
        assert injector.pending == 0

    @pytest.mark.parametrize("seed", range(12))
    def test_seeded_sweep_every_fault_is_detected(self, seed):
        oram, injector = _faulty_stack(
            lambda device: FaultInjector.seeded(device, seed, num_faults=1, horizon=50)
        )
        with pytest.raises(IntegrityError):
            _run(oram, accesses=400)
        assert len(injector.injected) == 1
        assert injector.pending == 0

    def test_schedule_is_deterministic(self):
        logs = []
        for _ in range(2):
            oram, injector = _faulty_stack(
                lambda device: FaultInjector.seeded(device, 42, num_faults=1, horizon=40)
            )
            with pytest.raises(IntegrityError):
                _run(oram)
            logs.append(injector.injected)
        assert logs[0] == logs[1]

    def test_unknown_kind_rejected(self):
        config = ORAMConfig(working_set_blocks=24)
        cipher = CounterBucketCipher(ProcessorKey(seed=1))
        device = EncryptedTreeStorage(config, cipher)
        with pytest.raises(ValueError, match="unknown read fault kind"):
            FaultInjector(device, read_faults={3: "meteor_strike"})

    def test_fault_kinds_constant(self):
        assert set(FAULT_KINDS) == {"bit_flip", "stale_replay", "drop_write"}


def _killer_point(value, marker_dir, seed=0):
    """Dies (once) at a chaos kill point, then succeeds on retry."""
    if value == 3:
        chaos_kill_point(marker_dir, "worker")
    return value * 10


def _overflowing_point(value, counter_dir, seed=0):
    """Deterministic failure that also counts its execution attempts."""
    attempt = os.path.join(counter_dir, f"attempt-{value}-{os.getpid()}-{seed}")
    with open(f"{attempt}-{len(glob.glob(attempt + '*'))}", "w"):
        pass
    raise StashOverflowError("deterministic overflow")


def _flaky_point(value, marker_dir, seed=0):
    """Raises a transient OSError exactly once, then succeeds."""
    marker = os.path.join(marker_dir, f"flaky-{value}.marker")
    try:
        fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value + 1000
    os.close(fd)
    raise OSError("transient hiccup")


class TestChaosRetry:
    def test_killed_worker_is_retried_and_grid_completes(self, tmp_path):
        specs = [
            ExperimentSpec(
                key=("kill", value),
                fn=_killer_point,
                kwargs={"value": value, "marker_dir": str(tmp_path)},
            )
            for value in range(8)
        ]
        results = ExperimentRunner(executor="process", max_workers=2).run(specs)
        assert [result.value for result in results] == [value * 10 for value in range(8)]
        assert all(result.ok for result in results)
        assert os.path.exists(tmp_path / "worker.marker")

    def test_deterministic_errors_are_never_retried(self, tmp_path):
        specs = [
            ExperimentSpec(
                key=("det", value),
                fn=_overflowing_point,
                kwargs={"value": value, "counter_dir": str(tmp_path)},
                seed=value,
            )
            for value in range(3)
        ]
        for executor in ("serial", "process"):
            for stale in tmp_path.iterdir():
                stale.unlink()
            results = ExperimentRunner(executor=executor, max_workers=2).run(specs)
            assert all(
                result.error_type == "StashOverflowError" and not result.ok
                for result in results
            )
            # Exactly one execution per point: attempt files never pile up.
            assert len(list(tmp_path.iterdir())) == 3

    def test_transient_in_function_errors_are_retried(self, tmp_path):
        for executor in ("serial", "process"):
            marker_dir = tmp_path / executor
            marker_dir.mkdir()
            specs = [
                ExperimentSpec(
                    key=("flaky", value),
                    fn=_flaky_point,
                    kwargs={"value": value, "marker_dir": str(marker_dir)},
                )
                for value in range(4)
            ]
            results = ExperimentRunner(executor=executor, max_workers=2).run(specs)
            assert [result.value for result in results] == [
                value + 1000 for value in range(4)
            ], executor

    def test_transient_retries_respect_the_attempt_budget(self, tmp_path):
        def always_fails(value, seed=0):
            raise OSError("never recovers")

        specs = [ExperimentSpec(key=1, fn=always_fails, kwargs={"value": 1})]
        result = ExperimentRunner(retry=RetryPolicy(max_attempts=1)).run(specs)[0]
        assert not result.ok and result.error_type == "OSError"

    def test_chaos_kill_point_is_one_shot(self, tmp_path):
        marker = tmp_path / "spot.marker"
        marker.touch()
        # Marker already exists: must return instead of exiting.
        assert chaos_kill_point(str(tmp_path), "spot") is False
