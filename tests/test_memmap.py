"""Durable memory-mapped storage: commit protocol, crash recovery, restore.

The centrepiece is the seeded crash-injection property test: for every
named commit-protocol crash point and several seeds, a
:class:`~repro.faults.CrashInjector` scars the file the way a real crash
at that instant could and reopening must either land bit-identically on a
committed generation (verified against in-memory shadow digests) or raise
a typed :class:`~repro.errors.DurabilityError` — never return a silently
corrupt tree.  In ``sync="strict"`` mode recovery is *guaranteed* and the
typed-error branch is itself a failure.
"""

import os
import pickle
import random

import pytest

np = pytest.importorskip("numpy")

from repro.backends import (  # noqa: E402
    OramSpec,
    build_oram,
    restore_oram,
    storage_backends,
)
from repro.core.config import ORAMConfig  # noqa: E402
from repro.core.memmap_tree import (  # noqa: E402
    CRASH_POINTS,
    MemmapTreeStorage,
    column_digest,
)
from repro.core.types import Operation  # noqa: E402
from repro.errors import ConfigurationError, DurabilityError  # noqa: E402
from repro.faults import CrashInjector, SimulatedCrash  # noqa: E402

CONFIG = ORAMConfig(working_set_blocks=48)


def _spec(tmp_path, **kwargs):
    return OramSpec(
        protocol="flat",
        storage="memmap-flat",
        storage_path=os.fspath(tmp_path),
        **kwargs,
    )


def _drive(oram, start, count, tag=b"w"):
    """Deterministic mixed stream with payload writes (exercises sidecar)."""
    rng = random.Random(start * 1031 + count)
    for i in range(start, start + count):
        address = 1 + (i * 7) % 48
        if i % 3:
            oram.access(address, Operation.WRITE, data=tag + b"%d" % i)
        else:
            oram.access(address, Operation.READ)
        # A sprinkle of rng-driven extra reads varies the touched paths.
        if rng.random() < 0.2:
            oram.access(1 + rng.randrange(48), Operation.READ)


# ----------------------------------------------------------------------
# Registration / spec plumbing
# ----------------------------------------------------------------------
def test_memmap_stack_registered():
    assert "memmap-flat" in storage_backends()


def test_storage_path_requires_memmap_stack():
    with pytest.raises(ConfigurationError):
        OramSpec(protocol="flat", storage="flat", storage_path="/tmp/x")


def test_memmap_spec_validation():
    with pytest.raises(ConfigurationError):
        OramSpec(storage="memmap-flat", memmap_sync="eventually")
    with pytest.raises(ConfigurationError):
        OramSpec(storage="memmap-flat", memmap_history=0)


def test_memmap_not_fleet_eligible(tmp_path):
    assert not _spec(tmp_path).fleet_eligible


def test_build_attaches_column_engine(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=3)
    assert isinstance(oram.storage, MemmapTreeStorage)
    assert oram._column_engine is not None
    oram.storage.abandon()


def test_columnar_min_slots_fallback(tmp_path):
    spec = _spec(tmp_path, columnar_min_slots=1 << 20)
    oram = build_oram(spec, CONFIG, seed=3)
    assert not isinstance(oram.storage, MemmapTreeStorage)


def test_adopt_columns_refused(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=3)
    storage = oram.storage
    with pytest.raises(ConfigurationError):
        storage.adopt_columns(
            np.zeros_like(storage._addresses),
            np.zeros_like(storage._leaves),
            np.zeros_like(storage._counts),
        )
    storage.abandon()


def test_sync_mode_validation(tmp_path):
    with pytest.raises(ConfigurationError):
        MemmapTreeStorage(CONFIG, tmp_path / "t.tree", sync="lazy")
    with pytest.raises(ConfigurationError):
        MemmapTreeStorage(CONFIG, tmp_path / "t.tree", history_generations=0)


# ----------------------------------------------------------------------
# Differential equivalence with the volatile stacks
# ----------------------------------------------------------------------
@pytest.mark.parametrize("protocol", ["flat", "hierarchical"])
def test_memmap_bit_identical_to_numpy_flat(tmp_path, protocol):
    from repro.core.config import HierarchyConfig

    if protocol == "flat":
        config = CONFIG
        mm_spec = _spec(tmp_path)
        np_spec = OramSpec(protocol="flat", storage="numpy-flat")
    else:
        config = HierarchyConfig(
            data_oram=ORAMConfig(working_set_blocks=48, stash_capacity=150),
            position_map_block_bytes=8,
            onchip_position_map_limit_bytes=32,
        )
        mm_spec = OramSpec(
            protocol="hierarchical",
            storage="memmap-flat",
            storage_path=os.fspath(tmp_path),
        )
        np_spec = OramSpec(protocol="hierarchical", storage="numpy-flat")
    mm = build_oram(mm_spec, config, seed=5)
    ref = build_oram(np_spec, config, seed=5)
    _drive(mm, 0, 150)
    _drive(ref, 0, 150)
    assert mm.stats.fingerprint() == ref.stats.fingerprint()
    if protocol == "flat":
        assert column_digest(mm.storage) == column_digest(ref.storage)


# ----------------------------------------------------------------------
# Commit / reopen round-trips
# ----------------------------------------------------------------------
def test_commit_reopen_round_trip(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=7)
    storage = oram.storage
    _drive(oram, 0, 120)
    digest = storage.digest()
    generation = storage.commit()
    assert generation == 1
    assert storage.commit() == 1  # clean epoch: no new generation
    path = storage.file_path
    storage.abandon()

    reopened = MemmapTreeStorage.open(path)  # config from the header
    assert reopened.generation == 1
    assert reopened.digest() == digest
    assert reopened.occupancy() > 0
    reopened.abandon()


def test_open_missing_file(tmp_path):
    with pytest.raises(DurabilityError):
        MemmapTreeStorage.open(tmp_path / "nope.tree")


def test_open_detects_truncation(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=7)
    storage = oram.storage
    _drive(oram, 0, 60)
    storage.commit()
    path = storage.file_path
    storage.abandon()
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)
    with pytest.raises(DurabilityError, match="truncated"):
        MemmapTreeStorage.open(path)


def test_open_detects_corrupt_data_page(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=7)
    storage = oram.storage
    _drive(oram, 0, 60)
    storage.commit()
    path = storage.file_path
    offset = storage._layout.data_off + 13
    storage.abandon()
    # Remove the journal so the flip cannot be rolled back.
    os.remove(path + ".journal")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ 0xFF]))
    with pytest.raises(DurabilityError, match="checksum"):
        MemmapTreeStorage.open(path)


def test_open_detects_double_header_loss(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=7)
    storage = oram.storage
    _drive(oram, 0, 30)
    storage.commit()
    path = storage.file_path
    storage.abandon()
    with open(path, "r+b") as handle:
        handle.write(os.urandom(8192))
    with pytest.raises(DurabilityError, match="header"):
        MemmapTreeStorage.open(path)


def test_open_detects_external_rollback(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=7)
    storage = oram.storage
    _drive(oram, 0, 30)
    storage.commit()
    path = storage.file_path
    storage.abandon()
    # A durable reference from the "future" of this file.
    with pytest.raises(DurabilityError, match="rolled back"):
        MemmapTreeStorage.open(path, at_generation=40)


def test_open_detects_store_replacement(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=7)
    storage = oram.storage
    storage.commit()
    storage.abandon()
    with pytest.raises(DurabilityError, match="store id"):
        MemmapTreeStorage.open(storage.file_path, expect_store_id=b"\x00" * 16, at_generation=0)


def test_crash_before_first_commit_recovers_empty_tree(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=7)
    storage = oram.storage
    empty_digest = storage.digest()
    _drive(oram, 0, 60)  # dirty epoch, never committed
    storage.abandon()
    reopened = MemmapTreeStorage.open(storage.file_path)
    assert reopened.generation == 0
    assert reopened.digest() == empty_digest
    reopened.abandon()


def test_reopened_store_resumes_bit_identically(tmp_path):
    """Abandon mid-epoch, reopen, and the ORAM continues exactly as a
    reference that committed at the same point and never crashed."""
    spec = _spec(tmp_path / "a")
    oram = build_oram(spec, CONFIG, seed=9)
    _drive(oram, 0, 80)
    snapshot = pickle.dumps(oram.snapshot())  # commits generation 1
    _drive(oram, 80, 40)  # epoch that will be lost
    oram.storage.abandon()

    resumed = restore_oram(pickle.loads(snapshot))
    reference = build_oram(_spec(tmp_path / "b"), CONFIG, seed=9)
    _drive(reference, 0, 80)
    _drive(resumed, 80, 60)
    _drive(reference, 80, 60)
    assert resumed.stats.fingerprint() == reference.stats.fingerprint()
    assert column_digest(resumed.storage) == column_digest(reference.storage)
    resumed.storage.abandon()
    reference.storage.abandon()


# ----------------------------------------------------------------------
# Snapshots: O(1) durable references + history rollback
# ----------------------------------------------------------------------
def test_snapshot_is_constant_size(tmp_path):
    config = ORAMConfig(working_set_blocks=2048)
    mm = build_oram(_spec(tmp_path), config, seed=11)
    ref = build_oram(OramSpec(protocol="flat", storage="numpy-flat"), config, seed=11)
    for oram in (mm, ref):
        for i in range(60):  # payload-free so the reference is pure columns
            oram.access(1 + (i * 7) % 2048, Operation.READ)
    mm_size = len(pickle.dumps(mm.snapshot()))
    ref_size = len(pickle.dumps(ref.snapshot()))
    # The durable reference replaces the columns; even on this tiny tree
    # the envelope must come in well under the column-inlining snapshot.
    assert mm_size < ref_size / 2
    mm.storage.abandon()


def test_restore_rolls_back_committed_generations(tmp_path):
    spec = _spec(tmp_path / "a")
    oram = build_oram(spec, CONFIG, seed=13)
    _drive(oram, 0, 60)
    snapshot = pickle.dumps(oram.snapshot())  # generation 1
    _drive(oram, 60, 40)
    oram.storage.commit()  # generation 2
    _drive(oram, 100, 40)
    oram.storage.commit()  # generation 3
    oram.storage.abandon()

    resumed = restore_oram(pickle.loads(snapshot))
    assert resumed.storage.generation == 1
    reference = build_oram(_spec(tmp_path / "b"), CONFIG, seed=13)
    _drive(reference, 0, 60)
    _drive(resumed, 60, 40)
    _drive(reference, 60, 40)
    assert resumed.stats.fingerprint() == reference.stats.fingerprint()
    assert column_digest(resumed.storage) == column_digest(reference.storage)
    resumed.storage.abandon()
    reference.storage.abandon()


def test_restore_beyond_history_raises_typed_error(tmp_path):
    spec = _spec(tmp_path, memmap_history=1)
    oram = build_oram(spec, CONFIG, seed=13)
    _drive(oram, 0, 40)
    snapshot = pickle.dumps(oram.snapshot())  # generation 1
    for start in (40, 80, 120):  # three more generations; history keeps 1
        _drive(oram, start, 40)
        oram.storage.commit()
    oram.storage.abandon()
    with pytest.raises(DurabilityError, match="history"):
        restore_oram(pickle.loads(snapshot))


def test_restore_checks_column_checksum_pin(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=13)
    _drive(oram, 0, 40)
    storage = oram.storage
    generation = storage.commit()
    storage.abandon()
    with pytest.raises(DurabilityError, match="checksum"):
        MemmapTreeStorage.open(
            storage.file_path,
            at_generation=generation,
            expect_table_sha=b"\xab" * 32,
        )


# ----------------------------------------------------------------------
# The crash-injection property test
# ----------------------------------------------------------------------
def _crash_case(tmp_path, point, seed, sync):
    """One crash scenario; returns assertions' raw material."""
    spec = _spec(tmp_path, memmap_sync=sync)
    oram = build_oram(spec, CONFIG, seed=1)
    storage = oram.storage
    rng = random.Random(seed)
    for i in range(50):
        oram.access(1 + rng.randrange(48), Operation.WRITE, data=b"a%d" % i)
    storage.commit()
    committed_digest = storage.digest()
    committed_generation = storage.generation
    for i in range(50):
        oram.access(1 + rng.randrange(48), Operation.WRITE, data=b"b%d" % i)
    pending_digest = storage.digest()  # what commit would make durable
    injector = CrashInjector(storage, point, seed=seed * 31 + 7)
    try:
        for i in range(50):
            oram.access(1 + rng.randrange(48), Operation.WRITE, data=b"c%d" % i)
        pending_digest = storage.digest()
        storage.commit()
        crashed = False
    except SimulatedCrash:
        crashed = True
    path = storage.file_path
    storage.abandon()
    return crashed, injector, path, committed_generation, committed_digest, pending_digest


@pytest.mark.parametrize("point", CRASH_POINTS)
@pytest.mark.parametrize("seed", range(5))
def test_crash_point_recovers_or_typed_error_strict(tmp_path, point, seed):
    (crashed, injector, path, committed_generation, committed_digest,
     pending_digest) = _crash_case(tmp_path, point, seed, "strict")
    assert crashed and injector.fired, f"crash point {point} never reached"
    # Strict mode *guarantees* recovery: every pre-image is fsynced before
    # its page is first dirtied, so a typed error would be a protocol bug.
    reopened = MemmapTreeStorage.open(path)
    if reopened.generation == committed_generation:
        assert reopened.digest() == committed_digest
    else:
        # The crash landed after the commit point: the epoch is durable.
        assert reopened.generation == committed_generation + 1
        assert reopened.digest() == pending_digest
    reopened.abandon()


@pytest.mark.parametrize("point", ["commit-journal-sync", "data-sync", "header-sync"])
@pytest.mark.parametrize("seed", range(5))
def test_crash_point_recovers_or_typed_error_relaxed(tmp_path, point, seed):
    (crashed, injector, path, committed_generation, committed_digest,
     pending_digest) = _crash_case(tmp_path, point, seed, "relaxed")
    assert crashed and injector.fired
    # Relaxed mode trades the guarantee for speed: recovery when the scars
    # spared the unsynced journal, a typed error otherwise — never silence.
    try:
        reopened = MemmapTreeStorage.open(path)
    except DurabilityError:
        return
    if reopened.generation == committed_generation:
        assert reopened.digest() == committed_digest
    else:
        assert reopened.generation == committed_generation + 1
        assert reopened.digest() == pending_digest
    reopened.abandon()


def test_crash_injector_validates_inputs(tmp_path):
    oram = build_oram(_spec(tmp_path), CONFIG, seed=1)
    with pytest.raises(ValueError):
        CrashInjector(oram.storage, "no-such-point", seed=0)
    with pytest.raises(ValueError):
        CrashInjector(oram.storage, "header-sync", seed=0, occurrence=0)
    oram.storage.abandon()


def test_hard_killed_commit_is_recovered_by_stale_journal_archive(tmp_path):
    """A crash *after* the commit point but before journal archival must
    land on the new generation with the stale journal archived."""
    oram = build_oram(_spec(tmp_path), CONFIG, seed=1)
    storage = oram.storage
    _drive(oram, 0, 60)
    injector = CrashInjector(storage, "journal-archive", seed=3)
    with pytest.raises(SimulatedCrash):
        storage.commit()
    assert injector.fired
    path = storage.file_path
    storage.abandon()
    reopened = MemmapTreeStorage.open(path)
    assert reopened.generation == 1
    assert os.path.exists(path + ".undo/gen-1.journal")
    reopened.abandon()
