"""Dynamic super-block merging: mapper policy, protocol and reproducibility.

The dynamic mapper implements the runtime merging the paper leaves as
future work (Section 3.2).  These tests pin

* the buddy-system policy itself (merge on co-access, split on cold
  halves, size bounds, address-space boundaries, determinism),
* the protocol invariants with merging active — exactly one path read and
  one path write per logical access, no duplicated or lost blocks through
  merge/split churn, every written payload readable,
* differential equality across the Plain/Flat/Encrypted/numpy-flat
  storage stacks on both protocols,
* serial == multiprocessing bit-reproducibility through the experiment
  runner (the sweep and SPEC-replay axes), and
* the :class:`SuperBlockMapper` fallback contracts — the non-contiguous
  ``group_span`` fallback and the ``num_groups`` / ``addresses_in_group``
  edge cases at the address-space boundary.
"""

import random

import pytest

from repro.backends import OramSpec, build_oram, full_scale_spec, storage_backends
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM
from repro.core.super_block import (
    DynamicSuperBlockMapper,
    StaticSuperBlockMapper,
    SuperBlockMapper,
)
from repro.errors import ConfigurationError

STACKS = [
    name
    for name in ("flat", "plain", "encrypted", "numpy-flat")
    if name in storage_backends()
]

DYNAMIC_KNOBS = dict(
    dynamic_super_blocks=True,
    super_block_window=64,
    super_block_merge_threshold=1,
    super_block_split_threshold=3,
    super_block_max_size=4,
)


def locality_trace(rng, working_set, length, run_length=4, run_fraction=0.7):
    """Sequential runs mixed with uniform accesses (merge-friendly)."""
    trace = []
    while len(trace) < length:
        if rng.random() < run_fraction:
            start = rng.randrange(1, max(2, working_set - run_length))
            trace.extend(range(start, start + run_length))
        else:
            trace.append(rng.randrange(1, working_set + 1))
    return trace[:length]


def state_fingerprint(oram: PathORAM):
    """Observable state of one PathORAM: tree, stash, map, statistics."""
    storage = oram.storage
    tree = tuple(
        tuple(
            (block.address, block.leaf, repr(block.data))
            for block in storage.read_bucket(index)
        )
        for index in range(storage.num_buckets)
    )
    stash = tuple(
        sorted((block.address, block.leaf, repr(block.data)) for block in oram._stash.blocks())
    )
    stats = oram.stats
    return (
        tree,
        stash,
        tuple(oram.position_map.leaves),
        stats.real_accesses,
        stats.dummy_accesses,
        stats.path_reads,
        stats.path_writes,
        stats.blocks_read,
        stats.blocks_written,
        stats.super_block_merges,
        stats.super_block_splits,
        stats.super_block_hits,
        storage.occupancy(),
    )


# ----------------------------------------------------------------------
# The mapper policy
# ----------------------------------------------------------------------
class TestDynamicMapperPolicy:
    def bound_mapper(self, n=64, **kwargs):
        knobs = dict(max_group_size=4, window=16, merge_threshold=1, split_threshold=2)
        knobs.update(kwargs)
        mapper = DynamicSuperBlockMapper(**knobs)
        mapper.bind(n)
        return mapper

    def test_starts_all_singletons(self):
        mapper = self.bound_mapper(8)
        assert list(mapper.iter_groups()) == [(a, 1) for a in range(1, 9)]
        assert mapper.group_of(5) == 4
        assert mapper.group_span(4) == (5, 6)
        assert mapper.addresses_in_group(4) == [5]

    def test_buddies_merge_on_co_access(self):
        mapper = self.bound_mapper(8)
        leaves = list(range(8))
        plan = mapper.plan_access(1, leaves[0], leaves)
        assert not plan.merged
        plan = mapper.plan_access(2, leaves[1], leaves)
        assert plan.merged and (plan.lo, plan.hi) == (1, 3)
        # The merged group settles on the buddy's (address 1's) leaf.
        assert plan.target_leaf == leaves[0]
        assert mapper.group_span(0) == (1, 3)
        assert mapper.group_span(1) == (1, 3)
        assert mapper.addresses_in_group(1) == [1, 2]

    def test_merge_is_buddy_aligned(self):
        # 2 and 3 are adjacent but not buddies (buddy pairs are {1,2} and
        # {3,4}); co-accessing them must not merge.
        mapper = self.bound_mapper(8)
        leaves = list(range(8))
        mapper.plan_access(2, leaves[1], leaves)
        plan = mapper.plan_access(3, leaves[2], leaves)
        assert not plan.merged

    def test_groups_grow_to_max_size_and_no_further(self):
        mapper = self.bound_mapper(16, max_group_size=4)
        leaves = [0] * 16
        for _ in range(4):
            for address in range(1, 9):
                mapper.plan_access(address, leaves[address - 1], leaves)
        sizes = dict(mapper.iter_groups())
        assert sizes.get(1) == 4 and sizes.get(5) == 4
        assert max(sizes.values()) <= 4

    def test_split_on_cold_half(self):
        mapper = self.bound_mapper(8, window=4, split_threshold=2)
        leaves = [0] * 8
        mapper.plan_access(1, 0, leaves)
        plan = mapper.plan_access(2, 0, leaves)
        assert plan.merged
        # Hammer the low half until the high half's counter decays to zero.
        split = False
        for _ in range(40):
            plan = mapper.plan_access(1, 0, leaves)
            if plan.split:
                split = True
                break
        assert split
        assert mapper.group_span(0) == (1, 2)
        assert mapper.group_span(1) == (2, 3)

    def test_boundary_buddy_outside_address_space_never_merges(self):
        # n = 6: the pair {5,6} can form, but growing it to {5..8} would
        # reach past the working set; the mapper must refuse.
        mapper = self.bound_mapper(6)
        leaves = [0] * 6
        for _ in range(8):
            for address in (5, 6):
                mapper.plan_access(address, 0, leaves)
        sizes = dict(mapper.iter_groups())
        assert sizes.get(5) == 2
        assert all(hi <= 7 for _, hi in (mapper.group_span(g) for g in range(6)))

    def test_odd_working_set_tail_singleton(self):
        # n = 5: address 5's buddy {6} does not exist; 5 stays singleton.
        mapper = self.bound_mapper(5)
        leaves = [0] * 5
        for _ in range(8):
            mapper.plan_access(5, 0, leaves)
        assert dict(mapper.iter_groups())[5] == 1

    def test_deterministic_partition(self):
        rng = random.Random(31)
        trace = locality_trace(rng, 32, 400)
        partitions = []
        for _ in range(2):
            mapper = self.bound_mapper(32)
            leaves = list(range(32))
            for address in trace:
                mapper.plan_access(address, leaves[address - 1], leaves)
            partitions.append(list(mapper.iter_groups()))
        assert partitions[0] == partitions[1]

    def test_knob_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicSuperBlockMapper(max_group_size=3)
        with pytest.raises(ConfigurationError):
            DynamicSuperBlockMapper(max_group_size=1)
        with pytest.raises(ConfigurationError):
            DynamicSuperBlockMapper(window=0)
        with pytest.raises(ConfigurationError):
            DynamicSuperBlockMapper(merge_threshold=0)
        with pytest.raises(ConfigurationError):
            DynamicSuperBlockMapper(split_threshold=0)

    def test_unbound_and_rebind_errors(self):
        mapper = DynamicSuperBlockMapper()
        with pytest.raises(ConfigurationError):
            mapper.group_span(0)
        with pytest.raises(ConfigurationError):
            mapper.plan_access(1, 0, [0])
        mapper.bind(8)
        mapper.bind(8)  # idempotent
        with pytest.raises(ConfigurationError):
            mapper.bind(9)

    def test_out_of_range_addresses(self):
        mapper = self.bound_mapper(8)
        with pytest.raises(ConfigurationError):
            mapper.plan_access(0, 0, [0] * 8)
        with pytest.raises(ConfigurationError):
            mapper.plan_access(9, 0, [0] * 8)
        with pytest.raises(ConfigurationError):
            mapper.group_of(0)
        with pytest.raises(ConfigurationError):
            mapper.group_span(-1)


# ----------------------------------------------------------------------
# Protocol invariants with merging active
# ----------------------------------------------------------------------
class TestDynamicProtocol:
    def build(
        self,
        storage="flat",
        eviction="none",
        working_set=192,
        stash_capacity=None,
        seed=7,
        **overrides,
    ):
        knobs = dict(DYNAMIC_KNOBS)
        knobs.update(overrides)
        spec = OramSpec(protocol="flat", storage=storage, eviction=eviction, **knobs)
        config = ORAMConfig(
            working_set_blocks=working_set,
            utilization=0.5,
            z=4,
            block_bytes=32,
            stash_capacity=stash_capacity,
            name="dyn-test",
        )
        return build_oram(spec, config, seed=seed)

    def test_one_path_op_per_logical_access(self):
        oram = self.build()
        trace = locality_trace(random.Random(3), 192, 600)
        oram.access_many(trace)
        stats = oram.stats
        assert stats.super_block_merges > 0  # merging actually engaged
        assert stats.path_reads == len(trace)
        assert stats.path_writes == len(trace)
        assert stats.real_accesses == len(trace)

    def test_group_sizes_bounded_and_spans_contiguous(self):
        oram = self.build(super_block_max_size=4)
        trace = locality_trace(random.Random(5), 192, 800)
        oram.access_many(trace)
        mapper = oram.super_block_mapper
        covered = 0
        for leader, size in mapper.iter_groups():
            assert 1 <= size <= 4
            lo, hi = mapper.group_span(leader - 1)
            assert (lo, hi) == (leader, leader + size)
            covered += size
        assert covered == 192  # the partition tiles the address space

    def test_no_blocks_lost_or_duplicated(self):
        oram = self.build()
        trace = locality_trace(random.Random(11), 192, 1000)
        oram.access_many(trace)
        assert oram.total_blocks_stored() == len(set(trace))

    def test_written_payloads_survive_merge_churn(self):
        oram = self.build()
        rng = random.Random(13)
        expected = {}
        for step in range(900):
            if rng.random() < 0.7:
                start = rng.randrange(1, 188)
                addresses = range(start, start + 4)
            else:
                addresses = [rng.randrange(1, 193)]
            for address in addresses:
                value = step * 1000 + address
                oram.write(address, value)
                expected[address] = value
        assert oram.stats.super_block_merges > 0
        for address, value in expected.items():
            result = oram.read(address)
            assert result.found and result.data == value

    def test_position_map_mirrors_block_locations(self):
        # Every block's leaf equals its per-address position-map entry —
        # the invariant that makes lazy retargeting miss-free.
        oram = self.build()
        trace = locality_trace(random.Random(17), 192, 700)
        oram.access_many(trace)
        leaves = oram.position_map.leaves
        for block in oram._stash.blocks():
            assert block.leaf == leaves[block.address - 1]
        storage = oram.storage
        for index in range(storage.num_buckets):
            for block in storage.read_bucket(index):
                assert block.leaf == leaves[block.address - 1]

    def test_access_many_matches_access_loop(self):
        trace = locality_trace(random.Random(19), 192, 500)
        fused = self.build(seed=23)
        looped = self.build(seed=23)
        fused.access_many(trace)
        for address in trace:
            looped.access(address)
        assert state_fingerprint(fused) == state_fingerprint(looped)

    def test_eviction_storms_stay_bounded(self):
        oram = self.build(eviction="background", working_set=128, stash_capacity=60)
        trace = locality_trace(random.Random(29), 128, 800)
        oram.access_many(trace)
        assert oram.stash_occupancy <= 60
        assert oram.stats.super_block_merges > 0

    def test_dynamic_vs_off_same_logical_results(self):
        config = ORAMConfig(working_set_blocks=128, utilization=0.5, z=4, stash_capacity=None)
        dynamic = build_oram(
            OramSpec(protocol="flat", eviction="none", **DYNAMIC_KNOBS), config, seed=3
        )
        plain = build_oram(OramSpec(protocol="flat", eviction="none"), config, seed=3)
        rng = random.Random(37)
        for step in range(400):
            address = rng.randrange(1, 129)
            if step % 3 == 0:
                dynamic.write(address, address + step)
                plain.write(address, address + step)
            else:
                a = dynamic.read(address)
                b = plain.read(address)
                assert (a.found, a.data) == (b.found, b.data)


# ----------------------------------------------------------------------
# Differential pinning across storage stacks
# ----------------------------------------------------------------------
class TestDynamicDifferential:
    def replay(self, storage, protocol="flat", seed=41):
        knobs = dict(DYNAMIC_KNOBS)
        spec = OramSpec(
            protocol=protocol,
            storage=storage,
            eviction="background" if protocol == "flat" else "default",
            **knobs,
        )
        rng = random.Random(43)
        if protocol == "flat":
            config = ORAMConfig(
                working_set_blocks=128, utilization=0.5, z=4, block_bytes=32, stash_capacity=70
            )
            working_set = 128
        else:
            config = HierarchyConfig(
                data_oram=ORAMConfig(
                    working_set_blocks=256, utilization=0.5, z=4, block_bytes=64, stash_capacity=90
                ),
                position_map_block_bytes=16,
                position_map_stash_capacity=90,
                onchip_position_map_limit_bytes=64,
            )
            working_set = 256
        oram = build_oram(spec, config, seed=seed)
        trace = locality_trace(rng, working_set, 500)
        for index, address in enumerate(trace):
            if index % 4 == 0:
                oram.write(address, address * 7 + index)
            else:
                oram.access(address)
        if protocol == "flat":
            return state_fingerprint(oram)
        return tuple(state_fingerprint(sub) for sub in oram.orams) + (
            tuple(oram.onchip_position_map.leaves),
            oram.stats.real_accesses,
            oram.stats.dummy_accesses,
        )

    @pytest.mark.parametrize("protocol", ["flat", "hierarchical"])
    def test_stacks_bit_identical(self, protocol):
        reference = self.replay("flat", protocol=protocol)
        for storage in STACKS:
            assert self.replay(storage, protocol=protocol) == reference, storage


# ----------------------------------------------------------------------
# Hierarchical protocol specifics
# ----------------------------------------------------------------------
class TestDynamicHierarchy:
    def hierarchy(self):
        return HierarchyConfig(
            data_oram=ORAMConfig(
                working_set_blocks=256, utilization=0.5, z=4, block_bytes=64, stash_capacity=None
            ),
            position_map_block_bytes=16,
            position_map_stash_capacity=None,
            onchip_position_map_limit_bytes=64,
        )

    def spec(self):
        return OramSpec(protocol="hierarchical", **DYNAMIC_KNOBS)

    def test_chain_ops_unchanged_per_access(self):
        oram = build_oram(self.spec(), self.hierarchy(), seed=47)
        assert oram.num_orams >= 2
        trace = locality_trace(random.Random(53), 256, 400)
        oram.access_many(trace)
        # The obliviousness shape: every ORAM in the chain performs exactly
        # one path read+write per logical access, merging or not.
        for sub in oram.orams:
            assert sub.stats.path_reads == len(trace)
            assert sub.stats.path_writes == len(trace)
        assert oram.data_oram.stats.super_block_merges > 0

    def test_access_many_matches_access_loop(self):
        trace = locality_trace(random.Random(59), 256, 300)
        fused = build_oram(self.spec(), self.hierarchy(), seed=61)
        looped = build_oram(self.spec(), self.hierarchy(), seed=61)
        fused.access_many(trace)
        for address in trace:
            looped.access(address)
        assert (
            tuple(state_fingerprint(sub) for sub in fused.orams)
            == tuple(state_fingerprint(sub) for sub in looped.orams)
        )

    def test_payload_round_trip(self):
        oram = build_oram(self.spec(), self.hierarchy(), seed=67)
        oram.access_many(locality_trace(random.Random(71), 256, 300))
        for address in (1, 2, 3, 100, 256):
            oram.write(address, address * 11)
        for address in (1, 2, 3, 100, 256):
            assert oram.read(address).data == address * 11

    def test_exclusive_interface_round_trip(self):
        # extract/insert route through the data ORAM's per-address mirror
        # (chain labels are advisory under dynamic merging), so extracted
        # members must vanish from the hierarchy and reappear after insert.
        oram = build_oram(self.spec(), self.hierarchy(), seed=73)
        oram.access_many(locality_trace(random.Random(77), 256, 400))
        for address in (1, 2, 3, 100, 256):
            oram.write(address, address * 13)
        held: dict[int, object] = {}
        rng = random.Random(79)
        for _ in range(200):
            address = rng.randrange(1, 257)
            if address in held:
                oram.insert(address, held.pop(address))
            else:
                extracted = oram.extract(address)
                assert address in extracted
                for member in extracted:
                    assert not oram.data_oram.contains(member), member
                held.update(extracted)
        for address, data in held.items():
            oram.insert(address, data)
        for address in (1, 2, 3, 100, 256):
            assert oram.read(address).data == address * 13
        assert oram.data_oram.stats.super_block_merges > 0

    def test_requires_ungrouped_data_config(self):
        hierarchy = HierarchyConfig(
            data_oram=ORAMConfig(
                working_set_blocks=256,
                utilization=0.5,
                z=4,
                block_bytes=64,
                stash_capacity=None,
                super_block_size=2,
            ),
            position_map_block_bytes=16,
            onchip_position_map_limit_bytes=64,
        )
        with pytest.raises(ConfigurationError):
            build_oram(self.spec(), hierarchy, seed=79)


# ----------------------------------------------------------------------
# Exclusive-ORAM interface (flat protocol)
# ----------------------------------------------------------------------
class TestDynamicExclusiveInterface:
    def test_fetch_prefetches_cohort_and_stays_exclusive(self):
        spec = OramSpec(protocol="flat", eviction="none", **DYNAMIC_KNOBS)
        config = ORAMConfig(working_set_blocks=128, utilization=0.5, z=4, stash_capacity=None)
        interface = ORAMMemoryInterface(build_oram(spec, config, seed=83))
        assert interface.super_block_size == DYNAMIC_KNOBS["super_block_max_size"]
        cache = {}
        rng = random.Random(89)
        for _ in range(1500):
            if rng.random() < 0.7:
                start = rng.randrange(1, 124)
                addresses = list(range(start, start + 4))
            else:
                addresses = [rng.randrange(1, 129)]
            for address in addresses:
                if address not in cache:
                    fetched = interface.fetch(address)
                    assert address in fetched
                    # Exclusivity: nothing fetched may still be in the ORAM.
                    for member in fetched:
                        assert not interface.oram.contains(member), member
                    cache.update(fetched)
            while len(cache) > 32:
                victim = next(iter(cache))
                interface.writeback(victim, cache.pop(victim))
        assert interface.stats.prefetched_lines > 0
        assert interface.oram.stats.super_block_merges > 0
        # Drain the cache and verify the full address space is recoverable.
        for address in list(cache):
            interface.writeback(address, cache.pop(address))
        recovered = set()
        for address in range(1, 129):
            recovered.update(interface.fetch(address).keys())
        assert recovered == set(range(1, 129))

    def test_access_path_and_remap_rejected(self):
        spec = OramSpec(protocol="flat", eviction="none", **DYNAMIC_KNOBS)
        config = ORAMConfig(working_set_blocks=64, utilization=0.5, z=4, stash_capacity=None)
        oram = build_oram(spec, config, seed=97)
        with pytest.raises(ConfigurationError):
            oram.access_path(1, 0, 0)
        with pytest.raises(ConfigurationError):
            oram.access_fixed_leaf(1, 0, 0)
        with pytest.raises(ConfigurationError):
            oram.extract_path(1, 0, 0)
        with pytest.raises(ConfigurationError):
            oram.remap_access(1)


# ----------------------------------------------------------------------
# Spec validation and full-scale routing
# ----------------------------------------------------------------------
class TestDynamicSpecValidation:
    def test_insecure_eviction_rejected(self):
        with pytest.raises(ConfigurationError):
            OramSpec(eviction="insecure", dynamic_super_blocks=True)

    def test_coalescing_combo_rejected(self):
        # Coalescing needs the fused chain walk (single-member data
        # groups); the combo would be a silent no-op, so it raises.
        with pytest.raises(ConfigurationError):
            OramSpec(
                protocol="hierarchical",
                coalesce_position_ops=True,
                dynamic_super_blocks=True,
            )

    def test_bad_knobs_rejected_at_spec_construction(self):
        with pytest.raises(ConfigurationError):
            OramSpec(dynamic_super_blocks=True, super_block_max_size=3)
        with pytest.raises(ConfigurationError):
            OramSpec(dynamic_super_blocks=True, super_block_window=0)

    def test_grouped_config_rejected(self):
        spec = OramSpec(**DYNAMIC_KNOBS)
        config = ORAMConfig(
            working_set_blocks=64,
            utilization=0.5,
            z=4,
            stash_capacity=None,
            super_block_size=2,
        )
        with pytest.raises(ConfigurationError):
            build_oram(spec, config, seed=1)

    def test_full_scale_routing_declines_dynamic(self):
        spec = OramSpec(**DYNAMIC_KNOBS)
        config = ORAMConfig(working_set_blocks=1 << 21, utilization=0.5, z=4, stash_capacity=None)
        assert full_scale_spec(spec, config) is spec


# ----------------------------------------------------------------------
# Runner reproducibility: serial == multiprocessing
# ----------------------------------------------------------------------
class TestDynamicRunnerReproducibility:
    def test_super_block_sweep_parallel_matches_serial(self):
        from repro.analysis.sweep import sweep_super_block_modes

        config = ORAMConfig(
            working_set_blocks=256,
            utilization=0.5,
            z=4,
            stash_capacity=None,
            name="sb-repro",
        )
        kwargs = dict(
            num_accesses=600,
            seed=8,
            group_size=4,
            window=64,
            merge_threshold=1,
            split_threshold=3,
        )
        serial = sweep_super_block_modes(config, executor="serial", **kwargs)
        parallel = sweep_super_block_modes(config, executor="process", max_workers=2, **kwargs)
        assert serial == parallel
        by_mode = {point.mode: point for point in serial if point.trace_kind == "hotspot"}
        assert by_mode["dynamic"].merges > 0
        assert by_mode["off"].merges == 0
        assert by_mode["static"].merges == 0

    def test_sweep_modes_override_an_already_dynamic_spec(self):
        # A spec that already enables dynamic merging is a natural input
        # when studying the feature; the off/static points must clear it
        # (off must not silently run dynamic, static must not crash).
        from repro.analysis.sweep import measure_super_block_mode

        config = ORAMConfig(working_set_blocks=64, utilization=0.5, z=4, stash_capacity=None)
        spec = OramSpec(protocol="flat", eviction="none", **DYNAMIC_KNOBS)
        off = measure_super_block_mode(config, "off", 200, seed=2, spec=spec)
        static = measure_super_block_mode(config, "static", 200, seed=2, spec=spec)
        assert off.merges == 0 and off.hits == 0
        assert static.merges == 0

    def test_modes_replay_identical_traces(self):
        # The mode axis must compare policies over the same address
        # stream; the trace seed therefore excludes the mode.
        from repro.analysis.sweep import measure_super_block_mode

        config = ORAMConfig(working_set_blocks=64, utilization=0.5, z=4, stash_capacity=None)
        points = [
            measure_super_block_mode(config, mode, 300, seed=6, trace_kind="hotspot")
            for mode in ("off", "static", "dynamic")
        ]
        assert len({point.accesses for point in points}) == 1

    def test_spec_axis_parallel_matches_serial(self):
        from repro.analysis.spec_eval import figure12_super_block_axis

        kwargs = dict(benchmarks=["libquantum"], num_memory_ops=600, seed=5)
        serial = figure12_super_block_axis(executor="serial", **kwargs)
        parallel = figure12_super_block_axis(executor="process", max_workers=2, **kwargs)
        assert serial == parallel
        dynamic = serial["libquantum"]["dynamic"]
        assert dynamic.merges > 0 and dynamic.hits > 0


# ----------------------------------------------------------------------
# SuperBlockMapper fallback contracts (the satellite coverage)
# ----------------------------------------------------------------------
class InterleavedMapper(SuperBlockMapper):
    """A deliberately non-contiguous mapper: groups interleave even and odd
    addresses (``{1, 3}``, ``{2, 4}``, ``{5, 7}``, ...), so ``group_span``
    keeps its base-class ``None`` fallback and the protocol must take the
    member-at-a-time paths."""

    def __init__(self, size=2):
        self._size = size

    @property
    def group_size(self):
        return self._size

    def group_of(self, address):
        if address < 1:
            raise ConfigurationError("address must be >= 1")
        block = (address - 1) // (2 * self._size)
        return 2 * block + ((address - 1) % 2)

    def addresses_in_group(self, group):
        base = (group // 2) * (2 * self._size) + 1 + (group % 2)
        return [base + 2 * index for index in range(self._size)]


class TestMapperFallbacks:
    def test_interleaved_mapper_round_trips(self):
        mapper = InterleavedMapper()
        assert mapper.group_span(0) is None  # the base-class fallback
        for address in range(1, 33):
            assert address in mapper.addresses_in_group(mapper.group_of(address))

    def test_group_span_fallback_protocol_paths(self):
        config = ORAMConfig(working_set_blocks=64, utilization=0.5, z=4, stash_capacity=None)
        oram = PathORAM(config, super_block_mapper=InterleavedMapper(), rng=random.Random(101))
        rng = random.Random(103)
        written = {}
        for step in range(300):
            address = rng.randrange(1, 65)
            oram.write(address, address * 3 + step)
            written[address] = address * 3 + step
        for address, value in written.items():
            assert oram.read(address).data == value
        # Non-contiguous groups still share one leaf per group.
        leaves = oram.position_map.leaves
        mapper = oram.super_block_mapper
        for block in oram._stash.blocks():
            assert block.leaf == leaves[mapper.group_of(block.address)]
        # Extraction takes the member-at-a-time fallback and returns the
        # whole (filtered) group.
        extracted = oram.extract(1)
        assert set(extracted) == {1, 3}

    def test_num_groups_boundary_cases(self):
        mapper = StaticSuperBlockMapper(4)
        assert mapper.num_groups(1) == 1
        assert mapper.num_groups(4) == 1
        assert mapper.num_groups(5) == 2
        assert mapper.num_groups(8) == 2
        with pytest.raises(ConfigurationError):
            mapper.num_groups(0)
        with pytest.raises(ConfigurationError):
            mapper.num_groups(-3)

    def test_addresses_in_group_may_exceed_working_set(self):
        # The documented contract: the last group's tail can reach past the
        # working set; callers filter.  The protocol clamps it — extracting
        # the last group of a 6-block ORAM with size-4 groups returns
        # addresses 5 and 6 only.
        mapper = StaticSuperBlockMapper(4)
        assert mapper.addresses_in_group(1) == [5, 6, 7, 8]
        with pytest.raises(ConfigurationError):
            mapper.addresses_in_group(-1)
        config = ORAMConfig(
            working_set_blocks=6,
            utilization=0.5,
            z=4,
            stash_capacity=None,
            super_block_size=4,
        )
        oram = PathORAM(config, rng=random.Random(107))
        for address in range(1, 7):
            oram.write(address, address)
        extracted = oram.extract(5)
        assert set(extracted) == {5, 6}

    def test_dynamic_mapper_group_identity_contracts(self):
        mapper = DynamicSuperBlockMapper(max_group_size=4)
        assert mapper.num_groups(16) == 16  # per-address granularity
        assert mapper.group_of(16) == 15
        assert mapper.group_span(15) == (16, 17)
        with pytest.raises(ConfigurationError):
            mapper.group_span(16)  # past the bound address space
