"""The backend/scenario registry: spec validation, construction, workers."""

import pickle
import random

import pytest

from repro.backends import (
    OramSpec,
    build_interface,
    build_memory_backend,
    build_oram,
    register_storage,
    storage_backends,
    storage_factory,
)
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM
from repro.core.tree import EncryptedTreeStorage, FlatTreeStorage, PlainTreeStorage
from repro.errors import ConfigurationError
from repro.integrity.storage import IntegrityVerifiedStorage
from repro.processor.memory import ORAMBackend


def _config(**kwargs) -> ORAMConfig:
    defaults = dict(working_set_blocks=64, z=4, block_bytes=32, stash_capacity=100)
    defaults.update(kwargs)
    return ORAMConfig(**defaults)


def _hierarchy() -> HierarchyConfig:
    return HierarchyConfig(
        data_oram=_config(working_set_blocks=256, block_bytes=64, stash_capacity=150),
        position_map_block_bytes=8,
        onchip_position_map_limit_bytes=32,
    )


class TestSpecValidation:
    def test_builtin_storage_stacks_registered(self):
        assert {"flat", "plain", "encrypted", "integrity"} <= set(storage_backends())

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            OramSpec(protocol="onion")

    def test_unknown_storage_rejected(self):
        with pytest.raises(ConfigurationError):
            OramSpec(storage="punched-cards")

    def test_unknown_eviction_rejected(self):
        with pytest.raises(ConfigurationError):
            OramSpec(eviction="hopeful")

    def test_hierarchical_rejects_forced_eviction(self):
        with pytest.raises(ConfigurationError):
            OramSpec(protocol="hierarchical", eviction="background")

    def test_specs_are_picklable(self):
        spec = OramSpec(protocol="hierarchical", storage="encrypted", key_seed=3)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_with_updates(self):
        spec = OramSpec().with_updates(storage="plain")
        assert spec.storage == "plain"
        assert spec.protocol == "flat"


class TestConstruction:
    @pytest.mark.parametrize(
        "storage,expected",
        [
            ("flat", FlatTreeStorage),
            ("plain", PlainTreeStorage),
            ("encrypted", EncryptedTreeStorage),
            ("integrity", IntegrityVerifiedStorage),
        ],
    )
    def test_flat_protocol_storage_stacks(self, storage, expected):
        config = _config()
        oram = build_oram(OramSpec(storage=storage), config, seed=1)
        assert isinstance(oram, PathORAM)
        assert isinstance(oram.storage, expected)
        oram.write(1, b"x")
        assert oram.read(1).data == b"x"

    def test_hierarchical_protocol(self):
        oram = build_oram(OramSpec(protocol="hierarchical"), _hierarchy(), seed=2)
        assert isinstance(oram, HierarchicalPathORAM)
        assert oram.num_orams >= 2
        oram.write(5, "five")
        assert oram.read(5).data == "five"

    def test_hierarchical_encrypted_stack(self):
        oram = build_oram(
            OramSpec(protocol="hierarchical", storage="encrypted", key_seed=9),
            _hierarchy(),
            seed=2,
        )
        for underlying in oram.orams:
            assert isinstance(underlying.storage, EncryptedTreeStorage)
        oram.write(7, b"seven")
        assert oram.read(7).data == b"seven"

    def test_protocol_config_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            build_oram(OramSpec(protocol="flat"), _hierarchy(), seed=0)
        with pytest.raises(ConfigurationError):
            build_oram(OramSpec(protocol="hierarchical"), _config(), seed=0)

    def test_eviction_policies_resolved(self):
        from repro.core.background_eviction import (
            BackgroundEviction,
            InsecureBlockRemapEviction,
            NoEviction,
        )

        config = _config()
        assert isinstance(
            build_oram(OramSpec(eviction="none"), config, seed=0).eviction_policy,
            NoEviction,
        )
        assert isinstance(
            build_oram(OramSpec(eviction="background"), config, seed=0).eviction_policy,
            BackgroundEviction,
        )
        assert isinstance(
            build_oram(OramSpec(eviction="insecure"), config, seed=0).eviction_policy,
            InsecureBlockRemapEviction,
        )

    def test_build_interface_and_memory_backend(self):
        interface = build_interface(OramSpec(), _config(), seed=4)
        assert isinstance(interface, ORAMMemoryInterface)
        backend = build_memory_backend(
            OramSpec(protocol="hierarchical"),
            _hierarchy(),
            return_data_cycles=100.0,
            finish_access_cycles=200.0,
            line_bytes=64,
            seed=4,
        )
        assert isinstance(backend, ORAMBackend)
        result = backend.fetch_line(1, now_cycles=0.0)
        assert result.latency_cycles >= 100.0

    def test_seed_and_rng_are_equivalent(self):
        config = _config()
        by_seed = build_oram(OramSpec(), config, seed=11)
        by_rng = build_oram(OramSpec(), config, rng=random.Random(11))
        for address in (3, 9, 27):
            assert by_seed.write(address, address).found == by_rng.write(address, address).found
        assert by_seed.stash_addresses() == by_rng.stash_addresses()


class TestRegistration:
    def test_custom_storage_stack_registers_and_builds(self):
        name = "test-custom-stack"

        @register_storage(name)
        def _custom(spec):
            return PlainTreeStorage

        try:
            assert name in storage_backends()
            oram = build_oram(OramSpec(storage=name), _config(), seed=0)
            assert isinstance(oram.storage, PlainTreeStorage)
            factory = storage_factory(OramSpec(storage=name))
            assert isinstance(factory(_config()), PlainTreeStorage)
        finally:
            from repro import backends

            backends._STORAGE_BUILDERS.pop(name, None)


class TestNumpyFlatStack:
    """The optional NumPy slot-array storage stack (``numpy-flat``)."""

    def test_registration_tracks_numpy_availability(self):
        try:
            import numpy  # noqa: F401
        except ImportError:
            assert "numpy-flat" not in storage_backends()
            with pytest.raises(ConfigurationError):
                OramSpec(storage="numpy-flat")
        else:
            assert "numpy-flat" in storage_backends()

    def test_builds_column_storage(self):
        pytest.importorskip("numpy")
        from repro.core.numpy_tree import NumpyFlatTreeStorage

        oram = build_oram(OramSpec(storage="numpy-flat"), _config(), seed=3)
        assert isinstance(oram.storage, NumpyFlatTreeStorage)
        oram.write(5, b"x")
        assert oram.read(5).data == b"x"
        assert oram.storage.occupancy() == oram.total_blocks_stored() - oram.stash_occupancy
        assert oram.storage.column_nbytes() > 0

    def test_round_trips_payloads_through_columns(self):
        pytest.importorskip("numpy")
        config = _config()
        oram = build_oram(OramSpec(storage="numpy-flat"), config, seed=5)
        payloads = {address: bytes([address]) * 4 for address in range(1, 33)}
        for address, payload in payloads.items():
            oram.write(address, payload)
        for address, payload in payloads.items():
            assert oram.read(address).data == payload

    def test_spec_with_numpy_flat_travels_through_pickle(self):
        pytest.importorskip("numpy")
        spec = OramSpec(storage="numpy-flat")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_columnar_min_slots_routes_small_trees_to_list_storage(self):
        pytest.importorskip("numpy")
        from repro.core.numpy_tree import NumpyFlatTreeStorage

        spec = OramSpec(storage="numpy-flat", columnar_min_slots=1 << 20)
        small = build_oram(spec, _config(), seed=3)
        assert isinstance(small.storage, FlatTreeStorage)
        # The default keeps every ORAM columnar.
        default = build_oram(OramSpec(storage="numpy-flat"), _config(), seed=3)
        assert isinstance(default.storage, NumpyFlatTreeStorage)

    def test_adaptive_hierarchy_mixes_stacks_by_size(self):
        pytest.importorskip("numpy")
        from repro.core.numpy_tree import NumpyFlatTreeStorage

        hierarchy = _hierarchy()
        data_slots = hierarchy.data_oram.num_buckets * hierarchy.data_oram.z
        spec = OramSpec(
            protocol="hierarchical",
            storage="numpy-flat",
            columnar_min_slots=data_slots,
        )
        oram = build_oram(spec, hierarchy, seed=5)
        assert isinstance(oram.data_oram.storage, NumpyFlatTreeStorage)
        assert all(
            isinstance(sub.storage, FlatTreeStorage) for sub in oram.orams[1:]
        )
        # The mixed chain still answers correctly.
        oram.write(3, b"x")
        assert oram.read(3).data == b"x"

    def test_column_engine_attaches_only_to_exact_columnar_storage(self):
        pytest.importorskip("numpy")
        oram = build_oram(OramSpec(storage="numpy-flat"), _config(), seed=3)
        assert oram._column_engine is not None
        listed = build_oram(OramSpec(storage="flat"), _config(), seed=3)
        assert listed._column_engine is None
        grouped = build_oram(
            OramSpec(storage="numpy-flat"),
            _config(super_block_size=2),
            seed=3,
        )
        assert grouped._column_engine is None


class TestFullScaleRouting:
    """full_scale_spec: huge grids move onto the column stack."""

    def test_small_configs_are_untouched(self):
        from repro.backends import full_scale_spec

        spec = OramSpec(storage="flat")
        assert full_scale_spec(spec, _config()) is spec

    def test_non_flat_stacks_are_respected(self):
        from repro.backends import FULL_SCALE_SLOTS, full_scale_spec

        big = ORAMConfig(
            working_set_blocks=FULL_SCALE_SLOTS, z=4, block_bytes=32,
            stash_capacity=200,
        )
        spec = OramSpec(storage="plain")
        assert full_scale_spec(spec, big) is spec

    def test_super_block_configs_stay_on_the_list_engine(self):
        # The column engine declines grouped ORAMs, so routing a
        # super-block config to numpy-flat would land it on the slow
        # generic loop; full_scale_spec must leave it alone.
        from repro.backends import FULL_SCALE_SLOTS, full_scale_spec

        big = ORAMConfig(
            working_set_blocks=FULL_SCALE_SLOTS, z=4, block_bytes=32,
            stash_capacity=200, super_block_size=2,
        )
        spec = OramSpec(storage="flat")
        assert full_scale_spec(spec, big) is spec
        hierarchy = HierarchyConfig(
            data_oram=big,
            position_map_block_bytes=8,
            onchip_position_map_limit_bytes=512,
        )
        hier_spec = OramSpec(protocol="hierarchical", storage="flat")
        assert full_scale_spec(hier_spec, hierarchy) is hier_spec

    def test_full_scale_flat_config_routes_to_columns(self):
        pytest.importorskip("numpy")
        from repro.backends import FULL_SCALE_SLOTS, full_scale_spec

        big = ORAMConfig(
            working_set_blocks=FULL_SCALE_SLOTS, z=4, block_bytes=32,
            stash_capacity=200,
        )
        routed = full_scale_spec(OramSpec(storage="flat"), big)
        assert routed.storage == "numpy-flat"
        assert routed.columnar_min_slots == FULL_SCALE_SLOTS

    def test_full_scale_hierarchy_keys_on_largest_oram(self):
        pytest.importorskip("numpy")
        from repro.backends import FULL_SCALE_SLOTS, full_scale_spec

        hierarchy = HierarchyConfig(
            data_oram=ORAMConfig(
                working_set_blocks=FULL_SCALE_SLOTS, z=4, block_bytes=128,
                stash_capacity=200,
            ),
            position_map_block_bytes=8,
            onchip_position_map_limit_bytes=512,
        )
        routed = full_scale_spec(
            OramSpec(protocol="hierarchical", storage="flat"), hierarchy
        )
        assert routed.storage == "numpy-flat"
