"""Differential suite pinning fleet execution to serial bit-identity.

The fleet executor's whole contract is that batching changes *nothing*
observable per point: every ORAM driven inside a :class:`FleetEngine`
batch must finish in exactly the state the serial reference loop leaves
it in — tree columns, stash, position map, RNG stream, statistics,
occupancy samples, transient stash peak — and every grid driver must
return bit-identical values under ``executor="fleet"``.  These tests pin
that contract, plus the fallback edges: groups below the batching
threshold, specs with no adapter, specs whose adapter declines, and
mid-batch retirement/abort.
"""

from __future__ import annotations

import random

import pytest

pytest.importorskip("numpy")

from repro.analysis import sweep as sweep_mod  # noqa: E402
from repro.analysis.sweep import (  # noqa: E402
    SWEEP_SPEC,
    measure_dummy_ratio,
    sweep_super_block_modes,
    sweep_utilization,
    utilization_config,
)
from repro.core.numpy_fleet import FleetEngine, FleetMember  # noqa: E402
from repro.runner import ExperimentRunner, ExperimentSpec  # noqa: E402
from repro.runner import fleet as fleet_runner  # noqa: E402


def fingerprint(oram):
    """Every observable of one PathORAM, RNG stream included."""
    storage = oram.storage
    tree = tuple(
        tuple(
            (block.address, block.leaf, repr(block.data))
            for block in storage.read_bucket(index)
        )
        for index in range(storage.num_buckets)
    )
    stash = tuple(
        sorted(
            (block.address, block.leaf, repr(block.data))
            for block in oram._stash.blocks()
        )
    )
    stats = oram.stats
    return (
        tree,
        stash,
        tuple(oram.position_map.leaves),
        oram._rng.getstate(),
        stats.real_accesses,
        stats.dummy_accesses,
        stats.path_reads,
        stats.path_writes,
        stats.blocks_read,
        stats.blocks_written,
        tuple(stats.stash_occupancy_samples),
        oram._stash.max_occupancy,
        storage.occupancy(),
    )


def build_point(config, seed):
    """A sweep point's ORAM, built exactly as the fleet adapters build it."""
    return sweep_mod._fleet_build(SWEEP_SPEC, config, seed)


def chunked_trace(seed, working_set, length, chunk=37):
    rng = random.Random(seed)
    trace = [rng.randrange(1, working_set + 1) for _ in range(length)]
    return [trace[i : i + chunk] for i in range(0, len(trace), chunk)]


def replay_program(chunks):
    for chunk in chunks:
        yield list(chunk)
    return None


class TestEngineBitIdentity:
    CONFIG = utilization_config(4, 0.5, 512)

    def test_single_member_matches_serial_loop(self):
        chunks = chunked_trace(11, self.CONFIG.working_set_blocks, 900)
        serial = build_point(self.CONFIG, 5)
        for chunk in chunks:
            serial.access_many(chunk)

        oram = build_point(self.CONFIG, 5)
        member = FleetMember(
            key="solo",
            oram=oram,
            program=replay_program(chunks),
            finalize=lambda o, reason: (fingerprint(o), reason),
        )
        FleetEngine([member]).run()
        assert member.retired and member.error is None
        batched_state, abort_reason = member.value
        assert abort_reason is None
        assert batched_state == fingerprint(serial)

    def test_mixed_batch_retires_members_mid_run(self):
        # Members share the tree shape but run different-length programs
        # with different seeds: the long tail drains through the scalar
        # cutoff path after the short members retire, and every single one
        # must still land in its serial state.
        lengths = [120, 400, 900, 260, 57, 700, 330]
        serial_states = []
        members = []
        for index, length in enumerate(lengths):
            chunks = chunked_trace(100 + index, self.CONFIG.working_set_blocks, length)
            serial = build_point(self.CONFIG, index)
            for chunk in chunks:
                serial.access_many(chunk)
            serial_states.append(fingerprint(serial))
            members.append(
                FleetMember(
                    key=index,
                    oram=build_point(self.CONFIG, index),
                    program=replay_program(chunks),
                    finalize=lambda o, reason: fingerprint(o),
                )
            )
        retire_order = []
        FleetEngine(members, on_retire=lambda m: retire_order.append(m.key)).run()
        for member, expected in zip(members, serial_states):
            assert member.error is None
            assert member.value == expected, member.key
        # Short programs must not wait for long ones.
        assert retire_order.index(4) < retire_order.index(2)
        assert sorted(retire_order) == list(range(len(lengths)))


class TestSweepGridEquality:
    GRID = dict(
        z_values=[4],
        utilizations=[0.35, 0.45, 0.55, 0.65],
        capacity_blocks=512,
        num_accesses=150,
    )

    def run_grid(self, executor, **overrides):
        return sweep_utilization(seed=3, executor=executor, **{**self.GRID, **overrides})

    def test_fleet_matches_serial_and_process(self, monkeypatch):
        monkeypatch.setattr(fleet_runner, "FLEET_MIN_GROUP", 1)
        reference = self.run_grid("serial")
        assert self.run_grid("fleet") == reference
        assert self.run_grid("process") == reference

    def test_aborting_points_match_serial(self, monkeypatch):
        # A tight abort factor makes the high-utilization points abort
        # mid-measurement; the fleet engine must fold the abort into the
        # same SweepPoint the serial loop produces.
        monkeypatch.setattr(fleet_runner, "FLEET_MIN_GROUP", 1)
        grid = dict(
            utilizations=[0.5, 0.8, 0.93],
            capacity_blocks=256,
            stash_slack=2,
            num_accesses=100,
            abort_dummy_factor=2.0,
        )
        reference = self.run_grid("serial", **grid)
        assert any(point.aborted for point in reference)
        assert self.run_grid("fleet", **grid) == reference

    def test_super_block_modes_match_serial(self, monkeypatch):
        # Only the ungrouped baseline batches; static and dynamic points
        # decline and ride the fallback — the whole axis must still be
        # bit-identical to serial.
        monkeypatch.setattr(fleet_runner, "FLEET_MIN_GROUP", 1)
        config = utilization_config(4, 0.5, 512)
        kwargs = dict(num_accesses=400, trace_kinds=("hotspot",), seed=7)
        reference = sweep_super_block_modes(config, executor="serial", **kwargs)
        assert sweep_super_block_modes(config, executor="fleet", **kwargs) == reference

    def test_progress_fires_once_per_point(self, monkeypatch):
        monkeypatch.setattr(fleet_runner, "FLEET_MIN_GROUP", 1)
        seen = []
        self.run_grid("fleet", progress=lambda done, total, result: seen.append((done, total)))
        assert seen == [(i + 1, 4) for i in range(4)]

    def test_abort_before_start_marks_all_points(self):
        specs = [
            ExperimentSpec(
                key=i,
                fn=measure_dummy_ratio,
                kwargs={
                    "config": utilization_config(4, 0.5, 512),
                    "num_accesses": 50,
                    "spec": SWEEP_SPEC,
                },
                seed=i,
            )
            for i in range(3)
        ]
        runner = ExperimentRunner(executor="fleet", fleet_min_group=1, should_abort=lambda: True)
        results = runner.run(specs)
        assert [result.error for result in results] == ["aborted"] * 3


class TestFallbackEdges:
    def engine_guard(self, monkeypatch):
        """Make FleetEngine construction an error: the test asserts the
        batch path was never taken."""

        def explode(*args, **kwargs):
            raise AssertionError("FleetEngine must not be constructed")

        monkeypatch.setattr("repro.core.numpy_fleet.FleetEngine", explode)

    def test_small_groups_take_the_fallback(self, monkeypatch):
        # Default FLEET_MIN_GROUP exceeds this grid, so the whole run must
        # go through the fallback executor without touching the engine.
        self.engine_guard(monkeypatch)
        grid = dict(
            z_values=[4],
            utilizations=[0.4, 0.6],
            capacity_blocks=512,
            num_accesses=80,
        )
        reference = sweep_utilization(seed=1, executor="serial", **grid)
        assert sweep_utilization(seed=1, executor="fleet", **grid) == reference

    def test_unregistered_fn_takes_the_fallback(self, monkeypatch):
        self.engine_guard(monkeypatch)
        specs = [ExperimentSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(5)]
        runner = ExperimentRunner(executor="fleet", fleet_min_group=1)
        assert runner.run_values(specs) == [i * i for i in range(5)]

    def test_ineligible_spec_takes_the_fallback(self, monkeypatch):
        # Dynamic super-block specs need the scalar per-access machinery;
        # the adapter declines them and the grid still computes correctly.
        self.engine_guard(monkeypatch)
        dynamic_spec = SWEEP_SPEC.with_updates(dynamic_super_blocks=True, super_block_max_size=4)
        assert not dynamic_spec.fleet_eligible
        config = utilization_config(4, 0.5, 512)
        kwargs = {"config": config, "num_accesses": 60, "spec": dynamic_spec}
        specs = [
            ExperimentSpec(key=i, fn=measure_dummy_ratio, kwargs=kwargs, seed=i)
            for i in range(2)
        ]
        fleet_values = ExperimentRunner(executor="fleet", fleet_min_group=1).run_values(specs)
        serial_values = ExperimentRunner(executor="serial").run_values(specs)
        assert fleet_values == serial_values


def _square(x: int, seed: int | None = None) -> int:
    return x * x
