"""Cache and exclusive-hierarchy tests (Table 1)."""

import pytest

from repro.errors import ConfigurationError
from repro.processor.cache import CacheHierarchy, SetAssociativeCache
from repro.processor.config import CacheConfig, ProcessorConfig, table1_processor


class TestCacheConfig:
    def test_num_sets(self):
        config = CacheConfig(size_bytes=32 * 1024, ways=4, line_bytes=128)
        assert config.num_sets == 64

    def test_table1_values(self):
        processor = table1_processor()
        assert processor.l1.size_bytes == 32 * 1024 and processor.l1.ways == 4
        assert processor.l2.size_bytes == 1024 * 1024 and processor.l2.ways == 16
        assert processor.line_bytes == 128
        assert processor.l1.hit_cycles == 2 and processor.l1.miss_cycles == 1
        assert processor.l2.hit_cycles == 10 and processor.l2.miss_cycles == 4
        assert processor.cpu_cycles_per_dram_cycle == 4

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, ways=3, line_bytes=128)

    def test_mismatched_line_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfig(
                l1=CacheConfig(size_bytes=32 * 1024, ways=4, line_bytes=64),
                l2=CacheConfig(size_bytes=1024 * 1024, ways=16, line_bytes=128),
            )


class TestSetAssociativeCache:
    def _cache(self, ways=2, sets=4):
        return SetAssociativeCache(
            CacheConfig(size_bytes=ways * sets * 128, ways=ways, line_bytes=128)
        )

    def test_hit_after_insert(self):
        cache = self._cache()
        cache.insert(10)
        assert cache.lookup(10) is True
        assert cache.stats.hits == 1

    def test_miss_recorded(self):
        cache = self._cache()
        assert cache.lookup(10) is False
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = self._cache(ways=2, sets=1)
        cache.insert(1)
        cache.insert(2)
        cache.lookup(1)  # make line 2 the LRU
        victim = cache.insert(3)
        assert victim is not None and victim.line_address == 2

    def test_dirty_bit_propagates_to_victim(self):
        cache = self._cache(ways=1, sets=1)
        cache.insert(1, dirty=True)
        victim = cache.insert(2)
        assert victim.dirty is True

    def test_invalidate(self):
        cache = self._cache()
        cache.insert(5, dirty=True)
        present, dirty = cache.invalidate(5)
        assert present and dirty
        assert cache.invalidate(5) == (False, False)

    def test_occupancy(self):
        cache = self._cache(ways=2, sets=2)
        for line in range(4):
            cache.insert(line)
        assert cache.occupancy() == 4


class TestCacheHierarchy:
    def _hierarchy(self):
        l1 = CacheConfig(
            size_bytes=2 * 128 * 2, ways=2, line_bytes=128, hit_cycles=2, miss_cycles=1
        )
        l2 = CacheConfig(
            size_bytes=4 * 128 * 4, ways=4, line_bytes=128, hit_cycles=10, miss_cycles=4
        )
        return CacheHierarchy(l1, l2)

    def test_first_access_misses_to_memory(self):
        hierarchy = self._hierarchy()
        cycles, llc_miss, writebacks = hierarchy.access(0, is_write=False)
        assert llc_miss is True
        assert cycles == 2 + 1 + 10 + 4

    def test_second_access_hits_l1(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0, is_write=False)
        cycles, llc_miss, _ = hierarchy.access(0, is_write=False)
        assert llc_miss is False
        assert cycles == 2

    def test_exclusive_promotion_from_l2(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0, is_write=False)
        # Fill L1's set so line 0 gets demoted to L2 (addresses alias set 0).
        l1_sets = hierarchy.l1.config.num_sets
        hierarchy.access(l1_sets * 128, is_write=False)
        hierarchy.access(2 * l1_sets * 128, is_write=False)
        assert hierarchy.l2.contains(0)
        assert not hierarchy.l1.contains(0)
        cycles, llc_miss, _ = hierarchy.access(0, is_write=False)
        assert llc_miss is False
        assert cycles == 2 + 1 + 10
        # Exclusivity: after promotion the line is in L1 only.
        assert hierarchy.l1.contains(0)
        assert not hierarchy.l2.contains(0)

    def test_dirty_line_eventually_written_back(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0, is_write=True)
        writebacks = []
        # Thrash enough conflicting lines through the hierarchy to push the
        # dirty line all the way out.
        stride = hierarchy.l2.config.num_sets * 128
        for i in range(1, 12):
            _, _, wb = hierarchy.access(i * stride, is_write=False)
            writebacks.extend(wb)
        dirty_victims = [line for line in writebacks if line.dirty]
        assert any(victim.line_address == 0 for victim in dirty_victims)

    def test_prefetched_line_goes_to_l2(self):
        hierarchy = self._hierarchy()
        hierarchy.fill_prefetched(7 * 128)
        assert hierarchy.l2.contains(7)
        assert not hierarchy.l1.contains(7)
        cycles, llc_miss, _ = hierarchy.access(7 * 128, is_write=False)
        assert llc_miss is False

    def test_prefetch_skips_lines_already_cached(self):
        hierarchy = self._hierarchy()
        hierarchy.access(0, is_write=False)
        assert hierarchy.fill_prefetched(0) == []

    def test_flush_writebacks_drains_everything(self):
        hierarchy = self._hierarchy()
        for i in range(6):
            hierarchy.access(i * 128, is_write=(i % 2 == 0))
        drained = hierarchy.flush_writebacks()
        assert len(drained) == 6
        assert hierarchy.l1.occupancy() == 0 and hierarchy.l2.occupancy() == 0
