"""Workload generator tests."""

import random
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.processor.trace import TraceRecord
from repro.workloads.spec_like import SPEC_PROFILES, BenchmarkProfile, generate_benchmark_trace
from repro.workloads.synthetic import (
    hotspot_trace,
    pointer_chase_trace,
    random_access_trace,
    sequential_scan_trace,
    strided_trace,
)


class TestSyntheticTraces:
    def test_random_trace_shape(self, rng):
        trace = random_access_trace(500, 1 << 20, rng)
        assert len(trace) == 500
        assert all(isinstance(r, TraceRecord) for r in trace)
        assert all(0 <= r.address < (1 << 20) for r in trace)

    def test_sequential_trace_is_monotonic_within_a_pass(self, rng):
        trace = sequential_scan_trace(100, 1 << 20, rng)
        addresses = [r.address for r in trace]
        assert addresses == sorted(addresses)

    def test_sequential_trace_wraps_around(self, rng):
        trace = sequential_scan_trace(20, 8 * 10, rng)
        assert trace[0].address == trace[10].address

    def test_strided_trace_stride(self, rng):
        trace = strided_trace(10, 1 << 20, rng, stride_bytes=256)
        assert trace[1].address - trace[0].address == 256

    def test_pointer_chase_visits_many_distinct_nodes(self, rng):
        trace = pointer_chase_trace(1000, 1 << 16, rng, node_bytes=64)
        distinct = len({r.address for r in trace})
        assert distinct > 500

    def test_hotspot_trace_concentrates_accesses(self, rng):
        trace = hotspot_trace(2000, 1 << 22, rng, hot_fraction=0.9, hot_set_bytes=4096)
        in_hot = sum(1 for r in trace if r.address < 4096)
        assert in_hot > 1500

    def test_write_fraction_respected(self, rng):
        trace = random_access_trace(3000, 1 << 20, rng, write_fraction=0.25)
        writes = sum(1 for r in trace if r.is_write)
        assert 0.18 < writes / len(trace) < 0.32

    def test_invalid_arguments_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            random_access_trace(0, 1 << 20, rng)
        with pytest.raises(ConfigurationError):
            strided_trace(10, 1 << 20, rng, stride_bytes=0)
        with pytest.raises(ConfigurationError):
            hotspot_trace(10, 1 << 20, rng, hot_fraction=1.5)


class TestBenchmarkProfiles:
    def test_all_profiles_generate(self):
        rng = random.Random(0)
        for name, profile in SPEC_PROFILES.items():
            trace = generate_benchmark_trace(profile, 200, rng)
            assert len(trace) == 200, name
            assert all(r.address < profile.working_set_bytes for r in trace)

    def test_paper_benchmarks_present(self):
        # The paper explicitly calls out mcf, bzip2 and libquantum as the
        # memory-bound benchmarks.
        for name in ("mcf", "bzip2", "libquantum"):
            assert name in SPEC_PROFILES

    def test_memory_bound_profiles_have_larger_working_sets(self):
        assert SPEC_PROFILES["mcf"].working_set_bytes > SPEC_PROFILES["hmmer"].working_set_bytes
        streaming = SPEC_PROFILES["libquantum"].working_set_bytes
        assert streaming > SPEC_PROFILES["gobmk"].working_set_bytes

    def test_streaming_profile_has_long_runs(self):
        assert SPEC_PROFILES["libquantum"].sequential_run_mean > 100
        assert SPEC_PROFILES["mcf"].sequential_run_mean < 10

    def test_gap_instructions_average_matches_profile(self):
        profile = SPEC_PROFILES["gcc"]
        trace = generate_benchmark_trace(profile, 6000, random.Random(1))
        mean_gap = statistics.mean(r.gap_instructions for r in trace)
        assert mean_gap == pytest.approx(profile.mean_gap_instructions, rel=0.2)

    def test_write_fraction_matches_profile(self):
        profile = SPEC_PROFILES["bzip2"]
        trace = generate_benchmark_trace(profile, 6000, random.Random(2))
        writes = sum(1 for r in trace if r.is_write)
        assert writes / len(trace) == pytest.approx(profile.write_fraction, abs=0.05)

    def test_deterministic_given_seed(self):
        profile = SPEC_PROFILES["mcf"]
        a = generate_benchmark_trace(profile, 100, random.Random(7))
        b = generate_benchmark_trace(profile, 100, random.Random(7))
        assert a == b

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            BenchmarkProfile(
                name="bad", working_set_bytes=10, mean_gap_instructions=1.0,
                write_fraction=0.1, sequential_run_mean=1.0, hot_fraction=0.1,
                hot_set_bytes=10,
            )

    def test_invalid_op_count_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_benchmark_trace(SPEC_PROFILES["mcf"], 0, random.Random(0))
