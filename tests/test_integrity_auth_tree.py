"""Authentication-tree (Section 5) tests, including tamper and replay detection."""

import random

import pytest

from repro.core.config import ORAMConfig
from repro.core.path_oram import PathORAM
from repro.crypto.bucket_encryption import CounterBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.errors import IntegrityError
from repro.integrity.auth_tree import PathORAMAuthenticator
from repro.integrity.storage import IntegrityVerifiedStorage


@pytest.fixture
def auth_config() -> ORAMConfig:
    return ORAMConfig(working_set_blocks=64, z=2, block_bytes=16, stash_capacity=60)


def _bucket(value: int, length: int = 8) -> bytes:
    return bytes([value % 256]) * length


class TestAuthenticator:
    def test_uninitialised_paths_verify(self, auth_config):
        # The scheme needs no initialisation: before any write, every path
        # verifies against the initial on-chip root.
        auth = PathORAMAuthenticator(auth_config)
        levels = auth_config.levels
        for leaf in (0, 1, auth_config.num_leaves - 1):
            auth.verify_path(leaf, [b""] * (levels + 1))

    def test_write_then_verify_same_path(self, auth_config):
        auth = PathORAMAuthenticator(auth_config)
        levels = auth_config.levels
        buckets = [_bucket(i) for i in range(levels + 1)]
        auth.update_path(3, buckets)
        auth.verify_path(3, buckets)

    def test_write_then_verify_overlapping_path(self, auth_config):
        auth = PathORAMAuthenticator(auth_config)
        levels = auth_config.levels
        auth.update_path(0, [_bucket(1) for _ in range(levels + 1)])
        # A different path shares at least the root bucket; reading it must
        # still verify, with the shared buckets holding the written data and
        # the rest never written.
        other_leaf = auth_config.num_leaves - 1
        from repro.core.tree import path_indices

        written = set(path_indices(0, levels))
        other_path = path_indices(other_leaf, levels)
        buckets = [_bucket(1) if index in written else b"" for index in other_path]
        auth.verify_path(other_leaf, buckets)

    def test_tampered_bucket_detected(self, auth_config):
        auth = PathORAMAuthenticator(auth_config)
        levels = auth_config.levels
        buckets = [_bucket(i) for i in range(levels + 1)]
        auth.update_path(5, buckets)
        tampered = list(buckets)
        tampered[2] = b"evil bucket"
        with pytest.raises(IntegrityError):
            auth.verify_path(5, tampered)

    def test_replayed_bucket_detected(self, auth_config):
        # Freshness: writing a path twice and then presenting the *old*
        # bucket contents must fail verification.
        auth = PathORAMAuthenticator(auth_config)
        levels = auth_config.levels
        old = [_bucket(1) for _ in range(levels + 1)]
        new = [_bucket(2) for _ in range(levels + 1)]
        auth.update_path(7, old)
        auth.update_path(7, new)
        auth.verify_path(7, new)
        with pytest.raises(IntegrityError):
            auth.verify_path(7, old)

    def test_tampered_external_hash_detected(self, auth_config):
        auth = PathORAMAuthenticator(auth_config)
        levels = auth_config.levels
        # Write two sibling paths so a sibling hash is actually consulted.
        auth.update_path(0, [_bucket(3) for _ in range(levels + 1)])
        auth.update_path(1, [_bucket(4) for _ in range(levels + 1)])
        from repro.core.tree import path_indices

        sibling_leaf_bucket = path_indices(0, levels)[-1]
        auth.tamper_with_hash(sibling_leaf_bucket, b"\x00" * 32)
        with pytest.raises(IntegrityError):
            auth.verify_path(1, [_bucket(4) for _ in range(levels + 1)])

    def test_hash_traffic_is_linear_in_levels(self, auth_config):
        # Section 5: at most L sibling hashes read and L+1 hashes written per access.
        auth = PathORAMAuthenticator(auth_config)
        levels = auth_config.levels
        auth.update_path(2, [_bucket(0) for _ in range(levels + 1)])
        writes_after_one_update = auth.counters.hashes_written
        assert writes_after_one_update <= levels + 1
        auth.verify_path(2, [_bucket(0) for _ in range(levels + 1)])
        assert auth.counters.sibling_hashes_read <= levels


class TestIntegrityVerifiedStorage:
    def _make(self, auth_config):
        cipher = CounterBucketCipher(ProcessorKey(seed=4))
        return IntegrityVerifiedStorage(auth_config, cipher)

    def test_oram_runs_with_verified_storage(self, auth_config):
        storage = self._make(auth_config)
        oram = PathORAM(auth_config, storage=storage, rng=random.Random(6))
        for address in range(1, 65):
            oram.write(address, bytes([address]))
        for address in range(1, 65):
            assert oram.read(address).data == bytes([address])
        assert storage.authenticator.counters.verifications > 0

    def test_tampering_with_ciphertext_is_detected(self, auth_config):
        storage = self._make(auth_config)
        oram = PathORAM(auth_config, storage=storage, rng=random.Random(7))
        for address in range(1, 33):
            oram.write(address, b"x")
        storage.tamper_with_bucket(0, b"corrupted ciphertext")
        with pytest.raises(IntegrityError):
            for address in range(1, 33):
                oram.read(address)

    def test_replaying_old_ciphertext_is_detected(self, auth_config):
        storage = self._make(auth_config)
        oram = PathORAM(auth_config, storage=storage, rng=random.Random(8))
        oram.write(1, b"version-1")
        captured = storage.inner.raw_bucket(0)
        # Drive more traffic so the root bucket is rewritten.
        for address in range(2, 40):
            oram.write(address, b"fill")
        assert storage.inner.raw_bucket(0) != captured
        storage.replay_bucket(0, captured)
        with pytest.raises(IntegrityError):
            for address in range(1, 40):
                oram.read(address)
