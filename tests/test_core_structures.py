"""Tests for the position map, stash, block types and bucket codec."""

import random

import pytest

from repro.core.bucket_codec import BucketCodec
from repro.core.position_map import PositionMap
from repro.core.stash import Stash
from repro.core.stats import AccessStats
from repro.core.types import DUMMY_ADDRESS, Block, Operation
from repro.errors import ConfigurationError, EncryptionError, StashOverflowError


class TestBlock:
    def test_dummy_detection(self):
        assert Block(address=DUMMY_ADDRESS, leaf=0).is_dummy()
        assert not Block(address=1, leaf=0).is_dummy()

    def test_operation_enum_values(self):
        assert Operation.READ.value == "read"
        assert Operation.WRITE.value == "write"


class TestPositionMap:
    def test_initial_leaves_in_range(self, rng):
        pmap = PositionMap(100, 16, rng=rng)
        assert all(0 <= pmap.lookup(i) < 16 for i in range(100))

    def test_remap_returns_old_and_new(self, rng):
        pmap = PositionMap(10, 8, rng=rng)
        old = pmap.lookup(3)
        returned_old, new = pmap.remap(3)
        assert returned_old == old
        assert pmap.lookup(3) == new

    def test_assign_and_lookup(self, rng):
        pmap = PositionMap(10, 8, rng=rng)
        pmap.assign(2, 5)
        assert pmap.lookup(2) == 5

    def test_assign_out_of_range_rejected(self, rng):
        pmap = PositionMap(10, 8, rng=rng)
        with pytest.raises(ConfigurationError):
            pmap.assign(0, 8)

    def test_initial_distribution_is_roughly_uniform(self):
        pmap = PositionMap(8000, 8, rng=random.Random(1))
        counts = [0] * 8
        for i in range(8000):
            counts[pmap.lookup(i)] += 1
        assert min(counts) > 800 and max(counts) < 1200

    def test_size_bits(self, rng):
        pmap = PositionMap(100, 16, rng=rng)
        assert pmap.size_bits(4) == 400

    def test_invalid_construction(self, rng):
        with pytest.raises(ConfigurationError):
            PositionMap(0, 4, rng=rng)
        with pytest.raises(ConfigurationError):
            PositionMap(4, 0, rng=rng)


class TestStash:
    def test_add_get_pop(self):
        stash = Stash()
        stash.add(Block(address=3, leaf=1, data="x"))
        assert 3 in stash
        assert stash.get(3).data == "x"
        assert stash.pop(3).address == 3
        assert 3 not in stash

    def test_dummy_blocks_ignored(self):
        stash = Stash()
        stash.add(Block(address=DUMMY_ADDRESS, leaf=0))
        assert len(stash) == 0

    def test_overwrite_same_address_does_not_grow(self):
        stash = Stash(capacity=1)
        stash.add(Block(address=1, leaf=0, data="a"))
        stash.add(Block(address=1, leaf=3, data="b"))
        assert len(stash) == 1
        assert stash.get(1).data == "b"

    def test_capacity_enforced(self):
        stash = Stash(capacity=2)
        stash.add(Block(address=1, leaf=0))
        stash.add(Block(address=2, leaf=0))
        with pytest.raises(StashOverflowError):
            stash.add(Block(address=3, leaf=0))

    def test_max_occupancy_tracks_high_water_mark(self):
        stash = Stash()
        for address in range(1, 6):
            stash.add(Block(address=address, leaf=0))
        for address in range(1, 4):
            stash.pop(address)
        assert stash.occupancy == 2
        assert stash.max_occupancy == 5

    def test_addresses_and_blocks_snapshots(self):
        stash = Stash()
        for address in (4, 7, 9):
            stash.add(Block(address=address, leaf=0))
        assert sorted(stash.addresses()) == [4, 7, 9]
        assert {b.address for b in stash.blocks()} == {4, 7, 9}

    def test_clear(self):
        stash = Stash()
        stash.add(Block(address=1, leaf=0))
        stash.clear()
        assert len(stash) == 0


class TestAccessStats:
    def test_dummy_ratio(self):
        stats = AccessStats()
        for _ in range(10):
            stats.record_real_access()
        for _ in range(5):
            stats.record_dummy_access()
        assert stats.dummy_ratio == 0.5
        assert stats.total_accesses == 15

    def test_access_overhead_equation(self):
        # Equation 1: (RA+DA)/RA * 2(L+1)M/B
        stats = AccessStats(real_accesses=100, dummy_accesses=50)
        overhead = stats.access_overhead(levels=20, bucket_bits=4096, block_bits=1024)
        assert overhead == pytest.approx(1.5 * 2 * 21 * 4)

    def test_occupancy_sampling_respects_flag(self):
        stats = AccessStats()
        stats.sample_stash_occupancy(5)
        assert stats.stash_occupancy_samples == []
        stats.record_occupancy = True
        stats.sample_stash_occupancy(5)
        assert stats.stash_occupancy_samples == [5]

    def test_merge_and_reset(self):
        a = AccessStats(real_accesses=1, dummy_accesses=2, path_reads=3)
        b = AccessStats(real_accesses=10, dummy_accesses=20, path_reads=30)
        a.merge(b)
        assert a.real_accesses == 11 and a.dummy_accesses == 22 and a.path_reads == 33
        a.reset()
        assert a.total_accesses == 0


class TestBucketCodec:
    @pytest.fixture
    def codec(self, small_config):
        return BucketCodec(small_config)

    def test_roundtrip_bytes_payload(self, codec):
        block = Block(address=5, leaf=3, data=b"hello world")
        decoded = codec.decode_block(codec.encode_block(block))
        assert decoded.address == 5 and decoded.leaf == 3 and decoded.data == b"hello world"

    def test_roundtrip_label_payload(self, codec):
        block = Block(address=9, leaf=1, data=[4, 8, 15, 16, 23, 42])
        decoded = codec.decode_block(codec.encode_block(block))
        assert decoded.data == [4, 8, 15, 16, 23, 42]

    def test_roundtrip_none_payload(self, codec):
        block = Block(address=2, leaf=0, data=None)
        decoded = codec.decode_block(codec.encode_block(block))
        assert decoded.data is None

    def test_dummy_encodes_and_decodes_to_none(self, codec):
        assert codec.decode_block(codec.encode_block(None)) is None

    def test_bucket_padded_to_z_slots(self, codec, small_config):
        slots = codec.encode_blocks([Block(address=1, leaf=0, data=b"x")])
        assert len(slots) == small_config.z

    def test_decode_blocks_drops_dummies(self, codec):
        slots = codec.encode_blocks([Block(address=1, leaf=0, data=b"x")])
        blocks = codec.decode_blocks(slots)
        assert len(blocks) == 1 and blocks[0].address == 1

    def test_unsupported_payload_rejected(self, codec):
        with pytest.raises(EncryptionError):
            codec.encode_block(Block(address=1, leaf=0, data={"not": "supported"}))

    def test_truncated_plaintext_rejected(self, codec):
        with pytest.raises(EncryptionError):
            codec.decode_block(b"short")
