"""Property-based tests (hypothesis) on the ORAM core invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backends import OramSpec, build_oram
from repro.core.background_eviction import BackgroundEviction
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.path_oram import PathORAM, leaf_common_path_length
from repro.core.super_block import StaticSuperBlockMapper
from repro.core.tree import (
    EncryptedTreeStorage,
    FlatTreeStorage,
    PlainTreeStorage,
    common_path_length,
    path_indices,
)
from repro.crypto.bucket_encryption import CounterBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.crypto.prf import Prf

_SLOW = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestTreeProperties:
    @given(levels=st.integers(min_value=1, max_value=12), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_cpl_fast_equals_tree_walk(self, levels, data):
        leaf_a = data.draw(st.integers(min_value=0, max_value=(1 << levels) - 1))
        leaf_b = data.draw(st.integers(min_value=0, max_value=(1 << levels) - 1))
        assert common_path_length(leaf_a, leaf_b, levels) == leaf_common_path_length(
            leaf_a, leaf_b, levels
        )

    @given(levels=st.integers(min_value=1, max_value=12), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_cpl_is_symmetric_and_bounded(self, levels, data):
        leaf_a = data.draw(st.integers(min_value=0, max_value=(1 << levels) - 1))
        leaf_b = data.draw(st.integers(min_value=0, max_value=(1 << levels) - 1))
        cpl = common_path_length(leaf_a, leaf_b, levels)
        assert cpl == common_path_length(leaf_b, leaf_a, levels)
        assert 1 <= cpl <= levels + 1
        if leaf_a == leaf_b:
            assert cpl == levels + 1

    @given(levels=st.integers(min_value=1, max_value=14), data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_path_starts_at_root_and_ends_at_leaf(self, levels, data):
        leaf = data.draw(st.integers(min_value=0, max_value=(1 << levels) - 1))
        path = path_indices(leaf, levels)
        assert path[0] == 0
        assert path[-1] == (1 << levels) - 1 + leaf
        assert len(path) == levels + 1


class TestConfigProperties:
    @given(
        working_set=st.integers(min_value=1, max_value=1 << 20),
        z=st.integers(min_value=1, max_value=8),
        utilization=st.floats(min_value=0.05, max_value=1.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_tree_always_large_enough(self, working_set, z, utilization):
        config = ORAMConfig(
            working_set_blocks=working_set, utilization=utilization, z=z,
            stash_capacity=None,
        )
        assert config.capacity_blocks >= config.total_blocks >= config.working_set_blocks
        assert config.bucket_bytes * 8 >= config.bucket_bits
        assert config.bucket_bytes % config.bucket_align_bytes == 0

    @given(working_set=st.integers(min_value=2, max_value=1 << 18))
    @settings(max_examples=100, deadline=None)
    def test_levels_monotone_in_working_set(self, working_set):
        smaller = ORAMConfig(working_set_blocks=working_set // 2 + 1, z=4, stash_capacity=None)
        larger = ORAMConfig(working_set_blocks=working_set, z=4, stash_capacity=None)
        assert larger.levels >= smaller.levels


class TestSuperBlockProperties:
    @given(
        size=st.integers(min_value=1, max_value=16),
        address=st.integers(min_value=1, max_value=1 << 20),
    )
    @settings(max_examples=300, deadline=None)
    def test_group_membership_is_consistent(self, size, address):
        mapper = StaticSuperBlockMapper(size)
        group = mapper.group_of(address)
        members = mapper.addresses_in_group(group)
        assert address in members
        assert len(members) == size
        assert all(mapper.group_of(member) == group for member in members)


class TestPrfProperties:
    @given(
        seed_a=st.tuples(st.integers(min_value=0, max_value=1 << 40),
                         st.integers(min_value=0, max_value=1 << 40)),
        seed_b=st.tuples(st.integers(min_value=0, max_value=1 << 40),
                         st.integers(min_value=0, max_value=1 << 40)),
    )
    @settings(max_examples=200, deadline=None)
    def test_distinct_seeds_distinct_outputs(self, seed_a, seed_b):
        prf = Prf(b"property-test-key")
        if seed_a != seed_b:
            assert prf.block(*seed_a) != prf.block(*seed_b)
        else:
            assert prf.block(*seed_a) == prf.block(*seed_b)


class TestORAMProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        operations=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=64),
                st.booleans(),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=1,
            max_size=120,
        ),
    )
    @_SLOW
    def test_oram_behaves_like_a_dictionary(self, seed, operations):
        """The ORAM must be functionally equivalent to a plain key/value map."""
        config = ORAMConfig(working_set_blocks=64, z=4, block_bytes=16, stash_capacity=80)
        oram = PathORAM(config, rng=random.Random(seed))
        reference: dict[int, int] = {}
        for address, is_write, value in operations:
            if is_write:
                reference[address] = value
                oram.write(address, value)
            else:
                result = oram.read(address)
                assert result.data == reference.get(address)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        operations=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=48),
                st.booleans(),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=5,
            max_size=80,
        ),
    )
    @_SLOW
    def test_storage_backends_are_interchangeable(self, seed, operations):
        """Differential test: FlatTreeStorage (the fast array-backed default),
        PlainTreeStorage and EncryptedTreeStorage drive bit-identical
        protocol behaviour — same AccessResult sequences, same per-access
        stash occupancies, same counters — for the same seeded workload."""
        config = ORAMConfig(
            working_set_blocks=48, z=3, block_bytes=32, stash_capacity=60,
            encryption="counter",
        )
        orams = {
            "flat": PathORAM(
                config, storage=FlatTreeStorage(config),
                eviction_policy=BackgroundEviction(), rng=random.Random(seed),
            ),
            "plain": PathORAM(
                config, storage=PlainTreeStorage(config),
                eviction_policy=BackgroundEviction(), rng=random.Random(seed),
            ),
            "encrypted": PathORAM(
                config,
                storage=EncryptedTreeStorage(config, CounterBucketCipher(ProcessorKey(seed=5))),
                eviction_policy=BackgroundEviction(), rng=random.Random(seed),
            ),
        }
        traces = {name: [] for name in orams}
        for address, is_write, value in operations:
            for name, oram in orams.items():
                if is_write:
                    result = oram.write(address, value)
                else:
                    result = oram.read(address)
                traces[name].append(
                    (result.address, result.data, result.found,
                     result.dummy_accesses, oram.stash_occupancy)
                )
        assert traces["flat"] == traces["plain"] == traces["encrypted"]
        reference = orams["plain"]
        for name, oram in orams.items():
            assert oram.stats == reference.stats, name
            assert oram.max_stash_occupancy == reference.max_stash_occupancy, name
            assert sorted(oram.stash_addresses()) == sorted(reference.stash_addresses()), name
            assert oram.storage.occupancy() == reference.storage.occupancy(), name
        # The flat backend's O(1) occupancy counter agrees with a recount.
        flat = orams["flat"].storage
        recount = sum(len(flat.read_bucket(i)) for i in range(flat.num_buckets))
        assert flat.occupancy() == recount

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        operations=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=48),
                st.booleans(),
                st.integers(min_value=0, max_value=1000),
            ),
            min_size=5,
            max_size=40,
        ),
    )
    @_SLOW
    def test_hierarchical_storage_backends_are_interchangeable(self, seed, operations):
        """Differential test on the recursive construction: the registry's
        Plain/Flat/Encrypted storage stacks drive bit-identical hierarchical
        behaviour — same AccessResult sequences, same dummy rounds, same
        per-level stash occupancies and counters — for the same seeded
        workload."""
        data = ORAMConfig(
            working_set_blocks=48, z=3, block_bytes=32, stash_capacity=60,
            encryption="counter",
        )
        hierarchy = HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            position_map_stash_capacity=100,
            onchip_position_map_limit_bytes=8,
        )
        assert hierarchy.num_orams >= 2
        orams = {
            storage: build_oram(
                OramSpec(protocol="hierarchical", storage=storage, key_seed=5),
                hierarchy,
                rng=random.Random(seed),
            )
            for storage in ("flat", "plain", "encrypted")
        }
        traces = {name: [] for name in orams}
        for address, is_write, value in operations:
            for name, oram in orams.items():
                if is_write:
                    result = oram.write(address, value)
                else:
                    result = oram.read(address)
                traces[name].append(
                    (result.address, result.data, result.found, result.dummy_accesses)
                    + tuple(level.stash_occupancy for level in oram.orams)
                )
        assert traces["flat"] == traces["plain"] == traces["encrypted"]
        reference = orams["plain"]
        for name, oram in orams.items():
            assert oram.stats == reference.stats, name
            for level, ref_level in zip(oram.orams, reference.orams):
                assert level.stats == ref_level.stats, name
                assert level.max_stash_occupancy == ref_level.max_stash_occupancy, name
                assert sorted(level.stash_addresses()) == sorted(ref_level.stash_addresses()), name
                assert level.storage.occupancy() == ref_level.storage.occupancy(), name

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @_SLOW
    def test_block_conservation(self, seed):
        """Blocks are never lost or duplicated: stash + tree holds exactly the
        set of addresses ever touched."""
        config = ORAMConfig(working_set_blocks=32, z=2, block_bytes=16, stash_capacity=60)
        oram = PathORAM(config, rng=random.Random(seed))
        rng = random.Random(seed + 1)
        touched = set()
        for _ in range(150):
            address = rng.randrange(1, 33)
            touched.add(address)
            oram.access(address)
        stored = set(oram.stash_addresses())
        for bucket_index in range(config.num_buckets):
            for block in oram.storage.read_bucket(bucket_index):
                assert block.address not in stored, "duplicate block"
                stored.add(block.address)
        assert stored == touched
