"""Unified experiment runner: determinism, ordering, errors, progress."""

import pytest

from repro.analysis.stash_occupancy import run_stash_occupancy_sweep
from repro.analysis.sweep import sweep_stash_size, sweep_utilization
from repro.runner import (
    ExperimentRunner,
    ExperimentSpec,
    RunnerError,
    derive_seed,
)


def _point(value, seed=0, fail=False):
    """Module-level experiment function (picklable for the process pool)."""
    if fail:
        raise ValueError(f"boom on {value}")
    import random

    rng = random.Random(seed)
    return (value, seed, rng.randrange(1_000_000))


def _specs(values, base_seed=7):
    return [
        ExperimentSpec(
            key=("point", value),
            fn=_point,
            kwargs={"value": value},
            seed=derive_seed(base_seed, ("point", value)),
        )
        for value in values
    ]


class TestSeedDerivation:
    def test_stable_and_distinct(self):
        assert derive_seed(1, (3, 0.5)) == derive_seed(1, (3, 0.5))
        assert derive_seed(1, (3, 0.5)) != derive_seed(2, (3, 0.5))
        assert derive_seed(1, (3, 0.5)) != derive_seed(1, (4, 0.5))


class TestExperimentRunner:
    def test_serial_returns_values_in_spec_order(self):
        values = ExperimentRunner().run_values(_specs([5, 3, 9]))
        assert [value[0] for value in values] == [5, 3, 9]

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = _specs(list(range(12)))
        serial = ExperimentRunner(executor="serial").run_values(specs)
        parallel = ExperimentRunner(executor="process", max_workers=2).run_values(specs)
        assert serial == parallel

    def test_errors_are_captured_per_point(self):
        specs = [
            ExperimentSpec(key="ok", fn=_point, kwargs={"value": 1}),
            ExperimentSpec(key="bad", fn=_point, kwargs={"value": 2, "fail": True}),
        ]
        results = ExperimentRunner().run(specs)
        assert results[0].ok and not results[1].ok
        assert "boom on 2" in results[1].error
        with pytest.raises(RunnerError):
            ExperimentRunner().run_values(specs)

    def test_progress_callback_sees_every_point(self):
        seen = []
        runner = ExperimentRunner(progress=lambda done, total, result: seen.append((done, total)))
        runner.run(_specs([1, 2, 3]))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_abort_stops_serial_run(self):
        completed = []
        runner = ExperimentRunner(
            progress=lambda done, total, result: completed.append(result.key),
            should_abort=lambda: len(completed) >= 2,
        )
        results = runner.run(_specs([1, 2, 3, 4]))
        assert [result.ok for result in results] == [True, True, False, False]
        assert results[-1].error == "aborted"

    def test_empty_spec_list(self):
        assert ExperimentRunner().run([]) == []

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(executor="threads")


class TestParallelSweepDeterminism:
    """The acceptance bar: parallel sweeps match serial ones bit-for-bit."""

    def test_fig8_mini_sweep_parallel_equals_serial(self):
        kwargs = dict(
            z_values=[2, 4],
            utilizations=[0.5, 0.8],
            capacity_blocks=512,
            num_accesses=120,
            seed=5,
            stash_slack=25,
            abort_dummy_factor=15.0,
        )
        serial = sweep_utilization(executor="serial", **kwargs)
        parallel = sweep_utilization(executor="process", max_workers=2, **kwargs)
        assert serial == parallel
        assert len(serial) == 4

    def test_fig7_mini_sweep_parallel_equals_serial(self):
        kwargs = dict(
            z_values=[2, 3],
            stash_sizes=[60, 100],
            working_set_blocks=256,
            num_accesses=150,
            seed=3,
        )
        serial = sweep_stash_size(executor="serial", **kwargs)
        parallel = sweep_stash_size(executor="process", max_workers=2, **kwargs)
        assert serial == parallel

    def test_stash_occupancy_sweep_parallel_equals_serial(self):
        kwargs = dict(z_values=[1, 2], working_set_blocks=256, num_accesses=600, seed=2)
        serial = run_stash_occupancy_sweep(executor="serial", **kwargs)
        parallel = run_stash_occupancy_sweep(executor="process", max_workers=2, **kwargs)
        assert serial == parallel
