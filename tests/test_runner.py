"""Unified experiment runner: determinism, ordering, errors, progress."""

import pytest

from repro.analysis.hierarchy import measure_dummy_factors
from repro.analysis.spec_eval import Figure12Config, Table2Row, figure12_slowdowns
from repro.analysis.stash_occupancy import run_stash_occupancy_sweep
from repro.analysis.sweep import sweep_stash_size, sweep_utilization
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.presets import dz3pb32
from repro.runner import (
    ExperimentRunner,
    ExperimentSpec,
    RunnerError,
    derive_seed,
)
from repro.workloads.spec_like import benchmark_trace
from repro.workloads.synthetic import synthetic_trace


def _point(value, seed=0, fail=False):
    """Module-level experiment function (picklable for the process pool)."""
    if fail:
        raise ValueError(f"boom on {value}")
    import random

    rng = random.Random(seed)
    return (value, seed, rng.randrange(1_000_000))


def _slow_point(value, seed=0):
    """Slow enough that an abort lands while points are still pending."""
    import time

    time.sleep(0.05)
    return value


def _specs(values, base_seed=7):
    return [
        ExperimentSpec(
            key=("point", value),
            fn=_point,
            kwargs={"value": value},
            seed=derive_seed(base_seed, ("point", value)),
        )
        for value in values
    ]


class TestSeedDerivation:
    def test_stable_and_distinct(self):
        assert derive_seed(1, (3, 0.5)) == derive_seed(1, (3, 0.5))
        assert derive_seed(1, (3, 0.5)) != derive_seed(2, (3, 0.5))
        assert derive_seed(1, (3, 0.5)) != derive_seed(1, (4, 0.5))


class TestExperimentRunner:
    def test_serial_returns_values_in_spec_order(self):
        values = ExperimentRunner().run_values(_specs([5, 3, 9]))
        assert [value[0] for value in values] == [5, 3, 9]

    def test_parallel_matches_serial_bit_for_bit(self):
        specs = _specs(list(range(12)))
        serial = ExperimentRunner(executor="serial").run_values(specs)
        parallel = ExperimentRunner(executor="process", max_workers=2).run_values(specs)
        assert serial == parallel

    def test_errors_are_captured_per_point(self):
        specs = [
            ExperimentSpec(key="ok", fn=_point, kwargs={"value": 1}),
            ExperimentSpec(key="bad", fn=_point, kwargs={"value": 2, "fail": True}),
        ]
        results = ExperimentRunner().run(specs)
        assert results[0].ok and not results[1].ok
        assert "boom on 2" in results[1].error
        with pytest.raises(RunnerError):
            ExperimentRunner().run_values(specs)

    def test_progress_callback_sees_every_point(self):
        seen = []
        runner = ExperimentRunner(progress=lambda done, total, result: seen.append((done, total)))
        runner.run(_specs([1, 2, 3]))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_abort_stops_serial_run(self):
        completed = []
        runner = ExperimentRunner(
            progress=lambda done, total, result: completed.append(result.key),
            should_abort=lambda: len(completed) >= 2,
        )
        results = runner.run(_specs([1, 2, 3, 4]))
        assert [result.ok for result in results] == [True, True, False, False]
        assert results[-1].error == "aborted"

    def test_abort_backfill_carries_error_type(self):
        completed = []
        runner = ExperimentRunner(
            progress=lambda done, total, result: completed.append(result.key),
            should_abort=lambda: len(completed) >= 1,
        )
        results = runner.run(_specs([1, 2, 3]))
        assert [result.error_type for result in results] == [None, "Aborted", "Aborted"]

    def test_error_type_names_the_exception_class(self):
        specs = [ExperimentSpec(key="bad", fn=_point, kwargs={"value": 2, "fail": True})]
        result = ExperimentRunner().run(specs)[0]
        assert result.error_type == "ValueError"

    def test_run_values_reports_overflow_failures_compactly(self):
        specs = [
            ExperimentSpec(key=("bad", value), fn=_point, kwargs={"value": value, "fail": True})
            for value in range(9)
        ]
        with pytest.raises(RunnerError) as excinfo:
            ExperimentRunner().run_values(specs)
        message = str(excinfo.value)
        assert "9 experiment point(s) failed" in message
        assert "[ValueError]" in message
        assert "(+4 more)" in message

    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        import concurrent.futures

        def broken_pool(*args, **kwargs):
            raise OSError("no semaphores here")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", broken_pool)
        specs = _specs([4, 5, 6])
        serial = ExperimentRunner().run_values(specs)
        fallen_back = ExperimentRunner(executor="process", max_workers=2).run_values(specs)
        assert fallen_back == serial

    def test_abort_mid_pool_backfills_aborted(self):
        completed = []
        specs = [
            ExperimentSpec(key=("slow", value), fn=_slow_point, kwargs={"value": value})
            for value in range(12)
        ]
        runner = ExperimentRunner(
            executor="process",
            max_workers=2,
            progress=lambda done, total, result: completed.append(result.key),
            should_abort=lambda: len(completed) >= 2,
        )
        results = runner.run(specs)
        aborted = [result for result in results if result.error == "aborted"]
        finished = [result for result in results if result.ok]
        assert aborted and finished
        assert all(result.error_type == "Aborted" for result in aborted)
        assert len(aborted) + len(finished) == 12

    def test_empty_spec_list(self):
        assert ExperimentRunner().run([]) == []

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError):
            ExperimentRunner(executor="threads")


class TestParallelSweepDeterminism:
    """The acceptance bar: parallel sweeps match serial ones bit-for-bit."""

    def test_fig8_mini_sweep_parallel_equals_serial(self):
        kwargs = dict(
            z_values=[2, 4],
            utilizations=[0.5, 0.8],
            capacity_blocks=512,
            num_accesses=120,
            seed=5,
            stash_slack=25,
            abort_dummy_factor=15.0,
        )
        serial = sweep_utilization(executor="serial", **kwargs)
        parallel = sweep_utilization(executor="process", max_workers=2, **kwargs)
        assert serial == parallel
        assert len(serial) == 4

    def test_fig7_mini_sweep_parallel_equals_serial(self):
        kwargs = dict(
            z_values=[2, 3],
            stash_sizes=[60, 100],
            working_set_blocks=256,
            num_accesses=150,
            seed=3,
        )
        serial = sweep_stash_size(executor="serial", **kwargs)
        parallel = sweep_stash_size(executor="process", max_workers=2, **kwargs)
        assert serial == parallel

    def test_stash_occupancy_sweep_parallel_equals_serial(self):
        kwargs = dict(z_values=[1, 2], working_set_blocks=256, num_accesses=600, seed=2)
        serial = run_stash_occupancy_sweep(executor="serial", **kwargs)
        parallel = run_stash_occupancy_sweep(executor="process", max_workers=2, **kwargs)
        assert serial == parallel


def _mini_hierarchy(working_set: int, name: str) -> HierarchyConfig:
    data = ORAMConfig(
        working_set_blocks=working_set, z=4, block_bytes=64, stash_capacity=150,
        name=name,
    )
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=32,
        name=name,
    )


class TestHierarchicalGridDeterminism:
    """Registry-built hierarchical grids parallelise bit-identically."""

    def test_dummy_factor_grid_parallel_equals_serial(self):
        configs = {
            name: _mini_hierarchy(working_set, name)
            for name, working_set in (("h256", 256), ("h384", 384), ("h512", 512))
        }
        serial = measure_dummy_factors(configs, num_accesses=150, seed=4, executor="serial")
        parallel = measure_dummy_factors(
            configs, num_accesses=150, seed=4, executor="process", max_workers=2
        )
        assert serial == parallel
        assert set(serial) == set(configs)

    def test_fig12_mini_grid_parallel_equals_serial(self):
        # A hand-sized Figure 12 cell: the latency row is fixed so the grid
        # exercises exactly the registry-built processor/ORAM stack.
        hierarchy = dz3pb32(scale=1 / 65536)
        latency = Table2Row(
            name="DZ3Pb32", num_orams=hierarchy.num_orams,
            return_data_cycles=1000.0, finish_access_cycles=2000.0,
            stash_kilobytes=1.0, position_map_kilobytes=1.0,
        )
        configuration = Figure12Config(
            name="DZ3Pb32", hierarchy=hierarchy, super_block_size=1, latency=latency
        )
        kwargs = dict(
            benchmarks=["mcf", "hmmer"],
            num_memory_ops=300,
            configurations=[configuration],
            warmup_operations=100,
            seed=6,
        )
        serial = figure12_slowdowns(executor="serial", **kwargs)
        parallel = figure12_slowdowns(executor="process", max_workers=2, **kwargs)
        assert serial == parallel
        assert set(serial) == {"mcf", "hmmer"}


class TestDerivedSeedTraceGeneration:
    """Workload generators ride the runner's derived-seed mechanism."""

    def test_benchmark_trace_stable_and_distinct(self):
        assert benchmark_trace("mcf", 200, seed=3) == benchmark_trace("mcf", 200, seed=3)
        assert benchmark_trace("mcf", 200, seed=3) != benchmark_trace("mcf", 200, seed=4)
        assert benchmark_trace("mcf", 200, seed=3) != benchmark_trace("bzip2", 200, seed=3)

    def test_synthetic_trace_stable_and_distinct(self):
        kwargs = dict(num_ops=150, working_set_bytes=1 << 16)
        assert synthetic_trace("random", seed=1, **kwargs) == synthetic_trace(
            "random", seed=1, **kwargs
        )
        assert synthetic_trace("random", seed=1, **kwargs) != synthetic_trace(
            "random", seed=2, **kwargs
        )
        assert synthetic_trace("random", seed=1, **kwargs) != synthetic_trace(
            "hotspot", seed=1, **kwargs
        )

    def test_trace_generation_in_workers_matches_serial(self):
        specs = [
            ExperimentSpec(
                key=("trace", benchmark),
                fn=benchmark_trace,
                kwargs={"benchmark": benchmark, "num_memory_ops": 300},
                seed=derive_seed(9, ("trace", benchmark)),
            )
            for benchmark in ("mcf", "libquantum", "bzip2")
        ] + [
            ExperimentSpec(
                key=("synthetic", kind),
                fn=synthetic_trace,
                kwargs={"kind": kind, "num_ops": 300, "working_set_bytes": 1 << 16},
                seed=derive_seed(9, ("synthetic", kind)),
            )
            for kind in ("random", "pointer_chase", "hotspot")
        ]
        serial = ExperimentRunner(executor="serial").run_values(specs)
        parallel = ExperimentRunner(executor="process", max_workers=2).run_values(specs)
        assert serial == parallel


class TestErrorClassification:
    """Transient vs deterministic error-type routing in RetryPolicy."""

    def test_disk_hiccups_are_transient(self):
        from repro.runner import RetryPolicy

        policy = RetryPolicy()
        for error_type in ("OSError", "IOError", "BrokenPipeError", "TimeoutError"):
            assert policy.is_transient(error_type), error_type

    def test_typed_storage_verdicts_never_retried(self):
        from repro.runner import DETERMINISTIC_ERROR_TYPES, RetryPolicy

        policy = RetryPolicy()
        for error_type in DETERMINISTIC_ERROR_TYPES:
            assert not policy.is_transient(error_type), error_type
        # The two headline verdicts, spelled out: a DurabilityError or
        # IntegrityError reports what the stored bytes *are*; re-reading
        # them cannot change the answer.
        assert not policy.is_transient("DurabilityError")
        assert not policy.is_transient("IntegrityError")

    def test_unknown_errors_default_to_deterministic(self):
        from repro.runner import RetryPolicy

        policy = RetryPolicy()
        assert not policy.is_transient("ValueError")
        assert not policy.is_transient(None)

    def test_deterministic_failure_is_not_reexecuted(self):
        from repro.errors import DurabilityError
        from repro.runner import RetryPolicy

        calls = []

        def fn(value, seed=0):
            calls.append(value)
            raise DurabilityError("file is torn")

        specs = [ExperimentSpec(key="x", fn=fn, kwargs={"value": 1})]
        results = ExperimentRunner(retry=RetryPolicy(max_attempts=3)).run(specs)
        assert results[0].error_type == "DurabilityError"
        assert calls == [1]  # exactly one execution: no retry budget spent

    def test_transient_failure_is_retried(self):
        from repro.runner import RetryPolicy

        calls = []

        def fn(value, seed=0):
            calls.append(value)
            if len(calls) < 2:
                raise OSError("disk hiccup")
            return value

        specs = [ExperimentSpec(key="x", fn=fn, kwargs={"value": 1})]
        results = ExperimentRunner(retry=RetryPolicy(max_attempts=3)).run(specs)
        assert results[0].ok and results[0].value == 1
        assert calls == [1, 1]
