"""End-to-end integration tests across subsystems."""

import random


from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.path_oram import PathORAM
from repro.crypto.bucket_encryption import CounterBucketCipher, StrawmanBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.integrity.storage import IntegrityVerifiedStorage
from repro.processor.config import table1_processor
from repro.processor.memory import DRAMBackend, ORAMBackend
from repro.processor.simulator import ProcessorSimulator
from repro.workloads.spec_like import SPEC_PROFILES, generate_benchmark_trace
from repro.workloads.synthetic import hotspot_trace


class TestEncryptedIntegrityVerifiedHierarchy:
    def test_full_stack_hierarchical_oram(self):
        """Encrypted buckets + authentication tree + recursion + background
        eviction, all at once, must still behave like a key/value store."""
        key = ProcessorKey(seed=42)
        data = ORAMConfig(working_set_blocks=256, z=4, block_bytes=32, stash_capacity=120)
        hierarchy = HierarchyConfig(
            data_oram=data, position_map_block_bytes=8, position_map_z=3,
            onchip_position_map_limit_bytes=64,
        )

        def storage_factory(config):
            return IntegrityVerifiedStorage(config, CounterBucketCipher(key))

        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(1),
                                    storage_factory=storage_factory)
        rng = random.Random(2)
        reference = {}
        for step in range(600):
            address = rng.randrange(1, 257)
            if rng.random() < 0.6:
                reference[address] = step
                oram.write(address, step)
            else:
                result = oram.read(address)
                assert result.data == reference.get(address)
        # Integrity machinery actually ran on every ORAM of the hierarchy.
        for underlying in oram.orams:
            assert underlying.storage.authenticator.counters.verifications > 0

    def test_strawman_cipher_also_works_end_to_end(self):
        key = ProcessorKey(seed=9)
        config = ORAMConfig(working_set_blocks=64, z=4, block_bytes=32,
                            stash_capacity=80, encryption="strawman")
        from repro.core.tree import EncryptedTreeStorage

        storage = EncryptedTreeStorage(config, StrawmanBucketCipher(key, rng=random.Random(3)))
        oram = PathORAM(config, storage=storage, rng=random.Random(4))
        for address in range(1, 65):
            oram.write(address, bytes([address]) * 2)
        for address in range(1, 65):
            assert oram.read(address).data == bytes([address]) * 2


class TestSecureProcessorEndToEnd:
    def test_oram_processor_runs_spec_like_trace(self):
        processor = table1_processor()
        profile = SPEC_PROFILES["gcc"]
        trace = generate_benchmark_trace(profile, 2500, random.Random(5))

        data = ORAMConfig(working_set_blocks=1 << 14, z=4, block_bytes=128,
                          stash_capacity=150, super_block_size=2)
        hierarchy = HierarchyConfig(data_oram=data, position_map_block_bytes=32,
                                    onchip_position_map_limit_bytes=2048)
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(6))
        backend = ORAMBackend(ORAMMemoryInterface(oram),
                              return_data_cycles=1892, finish_access_cycles=3132)
        result = ProcessorSimulator(processor, backend).run(trace, warmup_operations=500)
        assert result.total_cycles > 0
        assert result.backend_name == "PathORAM"
        assert result.llc_misses > 0

    def test_oram_slowdown_decreases_with_cache_friendliness(self):
        """A cache-resident workload suffers far less ORAM slowdown than a
        thrashing one — the core qualitative claim behind Figure 12."""
        processor = table1_processor()
        rng = random.Random(7)
        friendly = hotspot_trace(6000, 1 << 22, rng, hot_fraction=0.995,
                                 hot_set_bytes=64 * 1024)
        hostile = hotspot_trace(6000, 1 << 22, rng, hot_fraction=0.05,
                                hot_set_bytes=64 * 1024)

        def run(trace, backend_factory):
            return ProcessorSimulator(processor, backend_factory()).run(
                trace, warmup_operations=3000
            )

        def oram_backend():
            data = ORAMConfig(working_set_blocks=1 << 15, z=4, block_bytes=128,
                              stash_capacity=150)
            hierarchy = HierarchyConfig(data_oram=data, position_map_block_bytes=32,
                                        onchip_position_map_limit_bytes=4096)
            oram = HierarchicalPathORAM(hierarchy, rng=random.Random(8))
            return ORAMBackend(ORAMMemoryInterface(oram),
                               return_data_cycles=1892, finish_access_cycles=3132)

        slowdown_friendly = run(friendly, oram_backend).total_cycles / run(
            friendly, lambda: DRAMBackend(line_bytes=128)
        ).total_cycles
        slowdown_hostile = run(hostile, oram_backend).total_cycles / run(
            hostile, lambda: DRAMBackend(line_bytes=128)
        ).total_cycles
        assert slowdown_hostile > slowdown_friendly * 1.5
