"""ORAM tree placement and ORAM-on-DRAM latency tests (Section 3.3.4, Figure 11)."""

import random

import pytest

from repro.core.config import ORAMConfig
from repro.core.presets import dz3pb32
from repro.core.tree import path_indices
from repro.dram.config import DRAMConfig
from repro.dram.oram_dram import (
    ORAMDRAMSimulator,
    naive_placement_factory,
    subtree_placement_factory,
)
from repro.dram.placement import NaivePlacement, SubtreePlacement
from repro.errors import ConfigurationError


@pytest.fixture
def oram_config() -> ORAMConfig:
    return ORAMConfig(working_set_blocks=1 << 14, z=4, block_bytes=128, stash_capacity=None)


class TestNaivePlacement:
    def test_buckets_are_contiguous(self, oram_config):
        placement = NaivePlacement(oram_config)
        assert placement.bucket_address(0) == 0
        assert placement.bucket_address(1) == oram_config.bucket_bytes
        assert placement.total_bytes() == oram_config.num_buckets * oram_config.bucket_bytes

    def test_base_address_offset(self, oram_config):
        placement = NaivePlacement(oram_config, base_address=4096)
        assert placement.bucket_address(0) == 4096

    def test_out_of_range_bucket_rejected(self, oram_config):
        placement = NaivePlacement(oram_config)
        with pytest.raises(ConfigurationError):
            placement.bucket_address(oram_config.num_buckets)

    def test_path_addresses_length(self, oram_config):
        placement = NaivePlacement(oram_config)
        chunks = placement.path_addresses(5)
        assert len(chunks) == oram_config.num_levels
        assert all(length == oram_config.bucket_bytes for _, length in chunks)


class TestSubtreePlacement:
    def test_addresses_unique_and_in_bounds(self, oram_config):
        placement = SubtreePlacement(oram_config, dram_config=DRAMConfig(channels=1))
        addresses = {placement.bucket_address(i) for i in range(oram_config.num_buckets)}
        assert len(addresses) == oram_config.num_buckets
        assert max(addresses) < placement.total_bytes()

    def test_buckets_do_not_overlap(self, oram_config):
        placement = SubtreePlacement(oram_config, dram_config=DRAMConfig(channels=1))
        spans = sorted(
            (placement.bucket_address(i), placement.bucket_address(i) + oram_config.bucket_bytes)
            for i in range(oram_config.num_buckets)
        )
        for (start_a, end_a), (start_b, _) in zip(spans, spans[1:]):
            assert end_a <= start_b

    def test_k_levels_fit_in_node(self, oram_config):
        dram = DRAMConfig(channels=2)
        placement = SubtreePlacement(oram_config, dram_config=dram)
        k = placement.levels_per_subtree
        assert ((1 << k) - 1) * oram_config.bucket_bytes <= placement.node_bytes
        assert ((1 << (k + 1)) - 1) * oram_config.bucket_bytes > placement.node_bytes

    def test_top_k_levels_share_one_node(self, oram_config):
        placement = SubtreePlacement(oram_config, dram_config=DRAMConfig(channels=1))
        k = placement.levels_per_subtree
        node = placement.node_bytes
        top_buckets = [placement.bucket_address(i) for i in range((1 << k) - 1)]
        assert all(address < node for address in top_buckets)

    def test_path_touches_fewer_nodes_than_naive_rows(self, oram_config):
        dram = DRAMConfig(channels=1)
        placement = SubtreePlacement(oram_config, dram_config=dram)
        path = path_indices(123 % oram_config.num_leaves, oram_config.levels)
        nodes = {placement.bucket_address(i) // placement.node_bytes for i in path}
        expected = -(-oram_config.num_levels // placement.levels_per_subtree)
        assert len(nodes) <= expected

    def test_node_smaller_than_bucket_rejected(self, oram_config):
        with pytest.raises(ConfigurationError):
            SubtreePlacement(oram_config, node_bytes=oram_config.bucket_bytes - 1)

    def test_requires_dram_config_or_node_bytes(self, oram_config):
        with pytest.raises(ConfigurationError):
            SubtreePlacement(oram_config)


class TestORAMDRAMSimulator:
    def test_subtree_beats_naive_with_multiple_channels(self):
        hierarchy = dz3pb32(1.0)
        dram = DRAMConfig(channels=4)
        naive = ORAMDRAMSimulator(hierarchy, dram, naive_placement_factory,
                                  rng=random.Random(1)).measure(6)
        subtree = ORAMDRAMSimulator(hierarchy, dram, subtree_placement_factory,
                                    rng=random.Random(1)).measure(6)
        assert subtree.finish_access_cycles < naive.finish_access_cycles

    def test_both_placements_slower_than_theoretical(self):
        hierarchy = dz3pb32(1.0)
        dram = DRAMConfig(channels=2)
        for factory in (naive_placement_factory, subtree_placement_factory):
            result = ORAMDRAMSimulator(hierarchy, dram, factory,
                                       rng=random.Random(2)).measure(4)
            assert result.finish_access_cycles >= result.theoretical_cycles

    def test_subtree_close_to_theoretical(self):
        # Paper: subtree placement is within ~6-13% of theoretical for 2-4
        # channels; allow a generous margin for our simpler DRAM model.
        hierarchy = dz3pb32(1.0)
        result = ORAMDRAMSimulator(hierarchy, DRAMConfig(channels=2),
                                   subtree_placement_factory, rng=random.Random(3)).measure(6)
        assert result.finish_access_cycles <= 1.3 * result.theoretical_cycles

    def test_more_channels_reduce_latency(self):
        hierarchy = dz3pb32(1.0)
        results = {}
        for channels in (1, 4):
            results[channels] = ORAMDRAMSimulator(
                hierarchy, DRAMConfig(channels=channels), subtree_placement_factory,
                rng=random.Random(4),
            ).measure(4).finish_access_cycles
        assert results[4] < results[1] / 2

    def test_return_data_before_finish(self):
        hierarchy = dz3pb32(1.0)
        result = ORAMDRAMSimulator(hierarchy, DRAMConfig(channels=2),
                                   subtree_placement_factory, rng=random.Random(5)).measure(4)
        assert result.return_data_cycles < result.finish_access_cycles

    def test_cpu_cycle_conversion(self):
        hierarchy = dz3pb32(1.0)
        result = ORAMDRAMSimulator(hierarchy, DRAMConfig(channels=2),
                                   subtree_placement_factory, rng=random.Random(6)).measure(2)
        return_cpu, finish_cpu = result.cpu_cycles(hierarchy.num_orams,
                                                   cpu_per_dram_cycle=4,
                                                   decryption_latency_cycles=100)
        expected = result.return_data_cycles * 4 + hierarchy.num_orams * 100
        assert return_cpu == pytest.approx(expected)
        assert finish_cpu > return_cpu

    def test_placements_do_not_overlap_between_orams(self):
        hierarchy = dz3pb32(1 / 64)
        simulator = ORAMDRAMSimulator(hierarchy, DRAMConfig(channels=1),
                                      subtree_placement_factory)
        placements = simulator.placements
        for first, second in zip(placements, placements[1:]):
            assert first.base_address + first.total_bytes() <= second.base_address
