"""Strawman Merkle tree tests."""

import pytest

from repro.errors import ConfigurationError, IntegrityError
from repro.integrity.merkle import MerkleTree


class TestConstruction:
    def test_capacity_rounded_to_power_of_two(self):
        assert MerkleTree(5).num_leaves == 8
        assert MerkleTree(8).num_leaves == 8
        assert MerkleTree(1).num_leaves == 1

    def test_levels(self):
        assert MerkleTree(8).levels == 3
        assert MerkleTree(16).levels == 4

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MerkleTree(0)

    def test_initial_payloads_affect_root(self):
        empty = MerkleTree(4)
        filled = MerkleTree(4, initial_payloads=[b"a", b"b"])
        assert empty.root != filled.root


class TestVerification:
    def test_valid_proof_verifies(self):
        tree = MerkleTree(8, initial_payloads=[bytes([i]) for i in range(8)])
        for leaf in range(8):
            tree.verify(leaf, bytes([leaf]), tree.proof(leaf))

    def test_wrong_payload_rejected(self):
        tree = MerkleTree(8, initial_payloads=[bytes([i]) for i in range(8)])
        with pytest.raises(IntegrityError):
            tree.verify(3, b"tampered", tree.proof(3))

    def test_wrong_leaf_index_rejected(self):
        tree = MerkleTree(8, initial_payloads=[bytes([i]) for i in range(8)])
        with pytest.raises(IntegrityError):
            tree.verify(2, bytes([3]), tree.proof(3))

    def test_stale_root_rejected_after_update(self):
        tree = MerkleTree(4, initial_payloads=[b"a", b"b", b"c", b"d"])
        old_root = tree.root
        tree.update(1, b"B")
        tree.verify(1, b"B", tree.proof(1))
        with pytest.raises(IntegrityError):
            tree.verify(1, b"B", tree.proof(1), root=old_root)

    def test_update_changes_root(self):
        tree = MerkleTree(4, initial_payloads=[b"a", b"b", b"c", b"d"])
        before = tree.root
        tree.update(0, b"z")
        assert tree.root != before

    def test_out_of_range_leaf_rejected(self):
        tree = MerkleTree(4)
        with pytest.raises(ConfigurationError):
            tree.proof(4)


class TestCostModel:
    def test_strawman_cost_is_quadratic_in_levels(self):
        # Section 5: the strawman needs Z (L+1)^2-ish hashes per ORAM access;
        # with a Merkle tree over N blocks its height is ~log2 N, so the cost
        # is Z (L+1) * height.
        tree = MerkleTree(1 << 20)
        cost = tree.hashes_per_oram_access(z=4, oram_levels=19)
        assert cost == 4 * 20 * 20

    def test_authenticated_scheme_is_cheaper(self):
        # The paper's scheme reads at most L sibling hashes per access.
        tree = MerkleTree(1 << 20)
        strawman_cost = tree.hashes_per_oram_access(z=4, oram_levels=19)
        paper_cost = 19  # sibling hashes along one ORAM path
        assert paper_cost * 10 < strawman_cost
