"""Tree geometry and storage back-end tests."""

import random

import pytest

from repro.core.path_oram import leaf_common_path_length
from repro.core.tree import (
    EncryptedTreeStorage,
    FlatTreeStorage,
    PlainTreeStorage,
    bucket_level,
    common_path_length,
    path_indices,
)
from repro.core.types import Block
from repro.crypto.bucket_encryption import CounterBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.errors import ConfigurationError


class TestPathIndices:
    def test_root_only_tree(self):
        assert path_indices(0, 0) == [0]

    def test_three_level_tree_paths(self):
        # L = 2: leaves are buckets 3..6.
        assert path_indices(0, 2) == [0, 1, 3]
        assert path_indices(1, 2) == [0, 1, 4]
        assert path_indices(2, 2) == [0, 2, 5]
        assert path_indices(3, 2) == [0, 2, 6]

    def test_path_length_is_levels_plus_one(self):
        for levels in range(1, 8):
            assert len(path_indices(0, levels)) == levels + 1

    def test_out_of_range_leaf_rejected(self):
        with pytest.raises(ConfigurationError):
            path_indices(4, 2)
        with pytest.raises(ConfigurationError):
            path_indices(-1, 2)

    def test_consecutive_path_entries_are_parent_child(self):
        for leaf in range(8):
            path = path_indices(leaf, 3)
            for parent, child in zip(path, path[1:]):
                assert child in (2 * parent + 1, 2 * parent + 2)

    def test_bucket_level(self):
        assert bucket_level(0) == 0
        assert bucket_level(1) == 1
        assert bucket_level(2) == 1
        assert bucket_level(3) == 2
        assert bucket_level(6) == 2
        assert bucket_level(7) == 3


class TestCommonPathLength:
    def test_figure1_examples(self):
        # Figure 1: an L=3 tree; CPL(leaf1, leaf2) = 3 and CPL(leaf3, leaf8) = 1
        # (the paper labels leaves 1..8; ours are 0..7).
        assert common_path_length(0, 1, 3) == 3
        assert common_path_length(2, 7, 3) == 1

    def test_identical_paths_share_everything(self):
        assert common_path_length(5, 5, 3) == 4

    def test_fast_formula_matches_tree_walk(self):
        rng = random.Random(0)
        for _ in range(200):
            levels = rng.randrange(1, 10)
            a = rng.randrange(1 << levels)
            b = rng.randrange(1 << levels)
            assert common_path_length(a, b, levels) == leaf_common_path_length(a, b, levels)

    def test_minimum_is_one(self):
        levels = 4
        for a in range(1 << levels):
            for b in range(1 << levels):
                assert common_path_length(a, b, levels) >= 1


class TestPlainTreeStorage:
    def test_roundtrip_bucket(self, small_config):
        storage = PlainTreeStorage(small_config)
        blocks = [Block(address=1, leaf=2, data="a"), Block(address=2, leaf=2, data="b")]
        storage.write_bucket(0, blocks)
        assert [b.address for b in storage.read_bucket(0)] == [1, 2]

    def test_overfilled_bucket_rejected(self, small_config):
        storage = PlainTreeStorage(small_config)
        blocks = [Block(address=i, leaf=0) for i in range(1, small_config.z + 2)]
        with pytest.raises(ConfigurationError):
            storage.write_bucket(0, blocks)

    def test_read_path_collects_real_blocks(self, small_config):
        storage = PlainTreeStorage(small_config)
        path = storage.path(3)
        storage.write_bucket(path[0], [Block(address=1, leaf=3)])
        storage.write_bucket(path[-1], [Block(address=2, leaf=3)])
        assert {b.address for b in storage.read_path(3)} == {1, 2}

    def test_write_path_clears_unassigned_buckets(self, small_config):
        storage = PlainTreeStorage(small_config)
        path = storage.path(0)
        for index in path:
            storage.write_bucket(index, [Block(address=1, leaf=0)])
        storage.write_path(0, {path[0]: [Block(address=7, leaf=0)]})
        assert [b.address for b in storage.read_bucket(path[0])] == [7]
        for index in path[1:]:
            assert storage.read_bucket(index) == []

    def test_occupancy_counts_real_blocks(self, small_config):
        storage = PlainTreeStorage(small_config)
        storage.write_bucket(0, [Block(address=1, leaf=0)])
        storage.write_bucket(5, [Block(address=2, leaf=1), Block(address=3, leaf=1)])
        assert storage.occupancy() == 3


class TestFlatTreeStorage:
    def test_roundtrip_bucket(self, small_config):
        storage = FlatTreeStorage(small_config)
        blocks = [Block(address=1, leaf=2, data="a"), Block(address=2, leaf=2, data="b")]
        storage.write_bucket(0, blocks)
        assert [b.address for b in storage.read_bucket(0)] == [1, 2]

    def test_overfilled_bucket_rejected(self, small_config):
        storage = FlatTreeStorage(small_config)
        blocks = [Block(address=i, leaf=0) for i in range(1, small_config.z + 2)]
        with pytest.raises(ConfigurationError):
            storage.write_bucket(0, blocks)
        with pytest.raises(ConfigurationError):
            storage.write_path_levels(0, [blocks] + [None] * small_config.levels)

    def test_rewriting_smaller_bucket_clears_stale_slots(self, small_config):
        storage = FlatTreeStorage(small_config)
        storage.write_bucket(0, [Block(address=1, leaf=0), Block(address=2, leaf=0)])
        storage.write_bucket(0, [Block(address=3, leaf=0)])
        assert [b.address for b in storage.read_bucket(0)] == [3]
        assert storage.occupancy() == 1

    def test_read_path_blocks_matches_read_path(self, small_config):
        storage = FlatTreeStorage(small_config)
        path = storage.path(3)
        storage.write_bucket(path[0], [Block(address=1, leaf=3)])
        storage.write_bucket(path[-1], [Block(address=2, leaf=3), Block(address=3, leaf=3)])
        assert storage.read_path_blocks(3) == storage.read_path(3)
        assert {b.address for b in storage.read_path_blocks(3)} == {1, 2, 3}

    def test_write_path_clears_unassigned_buckets(self, small_config):
        storage = FlatTreeStorage(small_config)
        path = storage.path(0)
        for index in path:
            storage.write_bucket(index, [Block(address=1, leaf=0)])
        storage.write_path(0, {path[0]: [Block(address=7, leaf=0)]})
        assert [b.address for b in storage.read_bucket(path[0])] == [7]
        for index in path[1:]:
            assert storage.read_bucket(index) == []

    def test_occupancy_is_maintained_incrementally(self, small_config):
        storage = FlatTreeStorage(small_config)
        storage.write_bucket(0, [Block(address=1, leaf=0)])
        storage.write_bucket(5, [Block(address=2, leaf=1), Block(address=3, leaf=1)])
        assert storage.occupancy() == 3
        storage.write_path(1, {0: [Block(address=4, leaf=1)]})
        recount = sum(len(storage.read_bucket(i)) for i in range(storage.num_buckets))
        assert storage.occupancy() == recount

    def test_path_is_cached_and_stable(self, small_config):
        storage = FlatTreeStorage(small_config)
        first = storage.path(2)
        assert storage.path(2) is first
        assert list(first) == path_indices(2, small_config.levels)


class TestEncryptedTreeStorage:
    @pytest.fixture
    def storage(self, small_config):
        cipher = CounterBucketCipher(ProcessorKey(seed=11))
        return EncryptedTreeStorage(small_config, cipher)

    def test_roundtrip_bucket(self, storage):
        blocks = [Block(address=4, leaf=1, data=b"payload")]
        storage.write_bucket(2, blocks)
        read = storage.read_bucket(2)
        assert len(read) == 1
        assert read[0].address == 4 and read[0].data == b"payload"

    def test_unwritten_bucket_reads_empty(self, storage):
        assert storage.read_bucket(0) == []
        assert storage.raw_bucket(0) is None

    def test_ciphertext_changes_on_rewrite_of_same_content(self, storage):
        blocks = [Block(address=4, leaf=1, data=b"payload")]
        storage.write_bucket(2, blocks)
        first = storage.raw_bucket(2)
        storage.write_bucket(2, blocks)
        second = storage.raw_bucket(2)
        assert first != second

    def test_empty_and_full_buckets_same_ciphertext_length(self, storage, small_config):
        storage.write_bucket(0, [])
        storage.write_bucket(1, [Block(address=i, leaf=0, data=b"x" * small_config.block_bytes)
                                 for i in range(1, small_config.z + 1)])
        # Dummy padding hides the number of real blocks... lengths match as
        # long as payload sizes match; empty buckets use zero-length slots,
        # so we only require that both are non-trivial ciphertexts.
        assert storage.raw_bucket(0) is not None
        assert storage.raw_bucket(1) is not None

    def test_write_path_and_read_path(self, storage):
        path = storage.path(1)
        storage.write_path(1, {path[0]: [Block(address=9, leaf=1, data=b"root")]})
        blocks = storage.read_path(1)
        assert [b.address for b in blocks] == [9]
