"""Checkpoint/resume: snapshot round-trips, the manager, and runner resume."""

import os
import pickle
import random
from dataclasses import dataclass

import pytest

from repro.backends import OramSpec, build_oram, restore_oram
from repro.core.config import ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.path_oram import PathORAM
from repro.core.presets import dz3pb32
from repro.core.snapshot import SNAPSHOT_VERSION, snapshot_kind
from repro.core.types import Operation
from repro.errors import CheckpointError
from repro.runner import (
    CheckpointManager,
    ExperimentRunner,
    ExperimentSpec,
    WindowPlan,
    derive_seed,
    merge_counters,
    run_windows,
)
from repro.runner.spec import ExperimentResult


def _flat_oram(spec_kwargs=None, seed=11):
    spec = OramSpec(protocol="flat", storage="flat", **(spec_kwargs or {}))
    return build_oram(spec, ORAMConfig(working_set_blocks=48), seed=seed)


def _drive(oram, start, count, working_set=48):
    """Deterministic mixed read/write stream; returns the observable log."""
    log = []
    for i in range(start, start + count):
        address = 1 + (i * 7) % working_set
        if i % 3:
            result = oram.access(address, Operation.WRITE, data=("payload", i))
        else:
            result = oram.access(address, Operation.READ)
        log.append((address, result.data, result.found))
    return log


def _flat_fingerprint(oram):
    return (
        oram.stats.fingerprint(),
        oram._stash.fingerprint(),
        oram._mapper.fingerprint() if hasattr(oram._mapper, "fingerprint") else None,
        oram._rng.getstate(),
        oram.position_map.leaves if hasattr(oram.position_map, "leaves") else None,
    )


class TestSnapshotRoundtrip:
    def test_flat_resume_is_bit_exact(self):
        straight = _flat_oram()
        log_a = _drive(straight, 0, 300)

        first = _flat_oram()
        assert log_a[:150] == _drive(first, 0, 150)
        snapshot = first.snapshot()
        resumed = PathORAM.restore(snapshot)
        assert resumed is not first
        assert log_a[150:] == _drive(resumed, 150, 150)
        assert _flat_fingerprint(resumed) == _flat_fingerprint(straight)

    def test_snapshot_does_not_alias_the_original(self):
        first = _flat_oram()
        _drive(first, 0, 60)
        resumed = PathORAM.restore(first.snapshot())
        _drive(first, 60, 60)
        # The original moved on; the restored copy is an independent fork.
        assert _flat_fingerprint(resumed) != _flat_fingerprint(first)
        _drive(resumed, 60, 60)
        assert _flat_fingerprint(resumed) == _flat_fingerprint(first)

    def test_dynamic_super_block_mapper_state_rides_along(self):
        kwargs = {"dynamic_super_blocks": True, "super_block_window": 64}
        straight = _flat_oram(kwargs)
        _drive(straight, 0, 240)
        first = _flat_oram(kwargs)
        _drive(first, 0, 120)
        resumed = PathORAM.restore(first.snapshot())
        _drive(resumed, 120, 120)
        assert resumed._mapper.fingerprint() == straight._mapper.fingerprint()
        assert _flat_fingerprint(resumed) == _flat_fingerprint(straight)

    def test_numpy_stack_resume_is_bit_exact(self):
        pytest.importorskip("numpy")
        kwargs = {"storage": "numpy-flat"}
        straight = build_oram(
            OramSpec(protocol="flat", **kwargs), ORAMConfig(working_set_blocks=48), seed=11
        )
        log_a = _drive(straight, 0, 300)
        first = build_oram(
            OramSpec(protocol="flat", **kwargs), ORAMConfig(working_set_blocks=48), seed=11
        )
        _drive(first, 0, 150)
        resumed = PathORAM.restore(first.snapshot())
        # The column engine is derived state: rebuilt, not serialised.
        assert resumed._column_engine is not None
        assert resumed._column_engine is not first._column_engine
        assert log_a[150:] == _drive(resumed, 150, 150)
        assert resumed.stats.fingerprint() == straight.stats.fingerprint()
        assert resumed._rng.getstate() == straight._rng.getstate()

    def test_hierarchical_plb_resume_is_bit_exact(self):
        spec = OramSpec(
            protocol="hierarchical",
            storage="flat",
            plb_entries_per_level=4,
            dynamic_super_blocks=True,
        )
        config = dz3pb32(scale=0.02)
        straight = build_oram(spec, config, seed=5)
        log_a = _drive(straight, 0, 220, working_set=config.data_oram.working_set_blocks)

        first = build_oram(spec, config, seed=5)
        working_set = config.data_oram.working_set_blocks
        assert log_a[:110] == _drive(first, 0, 110, working_set=working_set)
        resumed = HierarchicalPathORAM.restore(first.snapshot())
        assert log_a[110:] == _drive(resumed, 110, 110, working_set=working_set)
        assert resumed.plb.fingerprint() == straight.plb.fingerprint()
        assert resumed.stats.fingerprint() == straight.stats.fingerprint()
        for restored_oram, reference in zip(resumed.orams, straight.orams):
            assert restored_oram.stats.fingerprint() == reference.stats.fingerprint()
            assert restored_oram._stash.fingerprint() == reference._stash.fingerprint()
        assert resumed._rng.getstate() == straight._rng.getstate()
        # The chain children must share one RNG after restore, like at build.
        assert all(o._rng is resumed._rng for o in resumed.orams)

    def test_restore_oram_dispatches_on_kind(self):
        flat = _flat_oram()
        _drive(flat, 0, 30)
        restored = restore_oram(flat.snapshot())
        assert isinstance(restored, PathORAM)

        hier = build_oram(
            OramSpec(protocol="hierarchical", storage="flat"), dz3pb32(scale=0.02), seed=3
        )
        _drive(hier, 0, 20, working_set=hier.hierarchy.data_oram.working_set_blocks)
        assert isinstance(restore_oram(hier.snapshot()), HierarchicalPathORAM)

    def test_envelope_rejections(self):
        flat = _flat_oram()
        snapshot = flat.snapshot()
        assert snapshot_kind(snapshot) == PathORAM.SNAPSHOT_KIND

        with pytest.raises(CheckpointError):
            PathORAM.restore({"format": "something-else"})
        with pytest.raises(CheckpointError):
            PathORAM.restore({**snapshot, "version": SNAPSHOT_VERSION + 1})
        with pytest.raises(CheckpointError):
            HierarchicalPathORAM.restore(snapshot)  # wrong kind
        with pytest.raises(CheckpointError):
            PathORAM.restore({**snapshot, "state": None})
        with pytest.raises(CheckpointError):
            restore_oram({**snapshot, "kind": "unknown-oram"})
        with pytest.raises(CheckpointError):
            snapshot_kind([1, 2, 3])


def _grid_point(value, seed=0):
    """Module-level experiment function (picklable for the process pool)."""
    rng = random.Random(seed)
    return (value, rng.randrange(1_000_000), rng.getrandbits(32))


def _grid_specs(values, base_seed=7):
    return [
        ExperimentSpec(
            key=("ck", value),
            fn=_grid_point,
            kwargs={"value": value},
            seed=derive_seed(base_seed, ("ck", value)),
        )
        for value in values
    ]


@dataclass(frozen=True)
class WindowCounters:
    accesses: int
    checksum: int


def _window_point(scale, num_accesses, seed=0):
    rng = random.Random(seed)
    checksum = sum(rng.randrange(scale) for _ in range(num_accesses))
    return WindowCounters(accesses=num_accesses, checksum=checksum)


class TestCheckpointManager:
    def test_roundtrip_and_generation(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        manager = CheckpointManager(path)
        assert manager.generation == 0 and manager.completed == 0
        manager.record(ExperimentResult(key=("a", 1), value=42))
        assert os.path.exists(path)
        reloaded = CheckpointManager(path)
        assert reloaded.completed == 1
        assert reloaded.result_for(("a", 1)).value == 42
        assert reloaded.result_for(("a", 2)) is None
        assert reloaded.generation == manager.generation == 1

    def test_save_cadence(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        manager = CheckpointManager(path, every=3)
        manager.record(ExperimentResult(key=1, value=1))
        manager.record(ExperimentResult(key=2, value=2))
        assert not os.path.exists(path)
        manager.record(ExperimentResult(key=3, value=3))
        assert os.path.exists(path)
        assert CheckpointManager(path).completed == 3

    def test_failed_results_are_not_recorded(self, tmp_path):
        manager = CheckpointManager(tmp_path / "grid.ckpt")
        manager.record(ExperimentResult(key=1, error="boom", error_type="ValueError"))
        assert manager.completed == 0
        assert manager.result_for(1) is None

    def test_corrupt_payload_rejected(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        CheckpointManager(path).record(ExperimentResult(key=1, value=1))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="digest"):
            CheckpointManager(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        path.write_bytes(b"short")
        with pytest.raises(CheckpointError, match="truncated"):
            CheckpointManager(path)

    def test_unknown_format_and_newer_version_rejected(self, tmp_path):
        import hashlib

        path = tmp_path / "grid.ckpt"
        for envelope in (
            {"format": "other", "version": 1, "generation": 1, "results": {}},
            {"format": "repro-checkpoint", "version": 99, "generation": 1, "results": {}},
        ):
            payload = pickle.dumps(envelope)
            generation = (1).to_bytes(8, "big")
            digest = hashlib.sha256(generation + payload).digest()
            path.write_bytes(digest + generation + payload)
            with pytest.raises(CheckpointError):
                CheckpointManager(path)

    def test_generation_rollback_refused(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        stale = CheckpointManager(path)
        stale.record(ExperimentResult(key=1, value=1))
        newer = CheckpointManager(path)
        newer.record(ExperimentResult(key=2, value=2))
        # ``stale`` now lags the on-disk generation; writing would roll the
        # newer process's results back.
        stale._results["extra"] = ExperimentResult(key=3, value=3)
        stale._dirty = 1
        with pytest.raises(CheckpointError, match="advanced externally"):
            stale.save()

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        manager = CheckpointManager(tmp_path / "grid.ckpt")
        for index in range(5):
            manager.record(ExperimentResult(key=index, value=index))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["grid.ckpt"]


class TestRunnerResume:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_interrupted_grid_resumes_bit_identically(self, tmp_path, executor):
        specs = _grid_specs(list(range(12)))
        reference = ExperimentRunner().run(specs)

        path = tmp_path / "grid.ckpt"
        # "Crash" after the first five points: only they reach the file.
        ExperimentRunner().run(specs[:5], checkpoint=CheckpointManager(path))
        assert CheckpointManager(path).completed == 5

        executed = []
        resumed = ExperimentRunner(
            executor=executor,
            max_workers=2,
            progress=lambda done, total, result: executed.append((done, total)),
        ).run(specs, checkpoint=CheckpointManager(path))
        assert [r.value for r in resumed] == [r.value for r in reference]
        assert [r.key for r in resumed] == [r.key for r in reference]
        # Progress reaches (total, total) counting cached points too.
        assert executed[-1] == (12, 12)
        assert CheckpointManager(path).completed == 12

    def test_resumed_values_match_via_run_values(self, tmp_path):
        specs = _grid_specs(list(range(8)))
        reference = ExperimentRunner().run_values(specs)
        path = tmp_path / "grid.ckpt"
        ExperimentRunner().run(specs[:3], checkpoint=CheckpointManager(path))
        resumed = ExperimentRunner().run_values(specs, checkpoint=CheckpointManager(path))
        assert resumed == reference

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_window_plan_resumes_bit_identically(self, tmp_path, executor):
        plan = WindowPlan.split(key="win", base_seed=9, total_accesses=600, windows=6)
        kwargs = {"scale": 1000}
        reference = run_windows(_window_point, plan, kwargs=kwargs)
        merged_reference = merge_counters(reference, ["accesses", "checksum"])

        path = tmp_path / "windows.ckpt"
        # Interrupt after three windows.
        partial = WindowPlan(key="win", base_seed=9, window_accesses=plan.window_accesses[:3])
        run_windows(_window_point, partial, kwargs=kwargs, checkpoint=CheckpointManager(path))
        resumed = run_windows(
            _window_point,
            plan,
            kwargs=kwargs,
            executor=executor,
            max_workers=2,
            checkpoint=CheckpointManager(path),
        )
        assert resumed == reference
        assert merge_counters(resumed, ["accesses", "checksum"]) == merged_reference

    def test_checkpointed_run_tolerates_missing_file_dir_entries(self, tmp_path):
        # A checkpoint pointed at a fresh path is simply empty.
        manager = CheckpointManager(tmp_path / "new.ckpt")
        results = ExperimentRunner().run(_grid_specs([1, 2]), checkpoint=manager)
        assert all(result.ok for result in results)
        assert manager.completed == 2


class TestKeepGenerations:
    def test_bounded_history_is_pruned(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        manager = CheckpointManager(path, keep_generations=2)
        for index in range(5):
            manager.record(ExperimentResult(key=index, value=index))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["grid.ckpt", "grid.ckpt.gen00000004", "grid.ckpt.gen00000005"]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path / "grid.ckpt", keep_generations=0)

    def test_corrupt_main_falls_back_to_newest_generation(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        manager = CheckpointManager(path, keep_generations=3)
        for index in range(4):
            manager.record(ExperimentResult(key=index, value=index))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        # Replace (not rewrite in place): the newest generation file is a
        # hard link to the same inode, and a real torn save corrupts the
        # main name, not the retained history.
        corrupt = tmp_path / "corrupt.tmp"
        corrupt.write_bytes(bytes(blob))
        os.replace(corrupt, path)
        # Default (latest-only) mode still refuses the corrupt file...
        with pytest.raises(CheckpointError, match="digest"):
            CheckpointManager(path)
        # ...keep mode resumes from the newest intact generation file.
        recovered = CheckpointManager(path, keep_generations=3)
        assert recovered.completed == 4
        assert recovered.generation == 4
        # And saving over the corrupt main file is not a rollback.
        recovered.record(ExperimentResult(key=9, value=9))
        assert CheckpointManager(path).completed == 5

    def test_missing_main_falls_back_to_newest_generation(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        manager = CheckpointManager(path, keep_generations=2)
        for index in range(3):
            manager.record(ExperimentResult(key=index, value=index))
        os.remove(path)
        recovered = CheckpointManager(path, keep_generations=2)
        assert recovered.completed == 3

    def test_rollback_detection_still_intact(self, tmp_path):
        path = tmp_path / "grid.ckpt"
        stale = CheckpointManager(path, keep_generations=2)
        stale.record(ExperimentResult(key=1, value=1))
        newer = CheckpointManager(path, keep_generations=2)
        newer.record(ExperimentResult(key=2, value=2))
        stale._results["extra"] = ExperimentResult(key=3, value=3)
        stale._dirty = 1
        with pytest.raises(CheckpointError, match="advanced externally"):
            stale.save()


class TestSnapshotEnvelopeErrors:
    """Direct coverage of load_snapshot's error paths (not just restore)."""

    def test_non_envelope_inputs(self):
        from repro.core.snapshot import load_snapshot

        for bad in (None, 42, [1], {"format": "other"}):
            with pytest.raises(CheckpointError, match="not a snapshot"):
                load_snapshot(bad, "path-oram", PathORAM)

    def test_version_mismatch_both_directions(self):
        flat = _flat_oram()
        snapshot = flat.snapshot()
        for version in (SNAPSHOT_VERSION + 1, SNAPSHOT_VERSION - 1, None, "x"):
            with pytest.raises(CheckpointError, match="version"):
                PathORAM.restore({**snapshot, "version": version})

    def test_missing_and_non_bytes_state(self):
        flat = _flat_oram()
        snapshot = flat.snapshot()
        without_state = {k: v for k, v in snapshot.items() if k != "state"}
        for bad in (without_state, {**snapshot, "state": "text"}):
            with pytest.raises(CheckpointError, match="state"):
                PathORAM.restore(bad)

    def test_corrupt_state_bytes(self):
        flat = _flat_oram()
        snapshot = flat.snapshot()
        with pytest.raises(CheckpointError, match="deserialise"):
            PathORAM.restore({**snapshot, "state": b"\x80\x05garbage"})

    def test_unexpected_restored_class(self):
        from repro.core.snapshot import load_snapshot, make_snapshot

        envelope = make_snapshot({"not": "an oram"}, "path-oram")
        with pytest.raises(CheckpointError, match="expected PathORAM"):
            load_snapshot(envelope, "path-oram", PathORAM)

    def test_kind_tag_missing(self):
        with pytest.raises(CheckpointError, match="kind"):
            snapshot_kind({"format": "repro-oram-snapshot", "version": 1})
