"""Analysis-driver tests (scaled-down versions of the evaluation sweeps)."""


import pytest

from repro.analysis.dram_latency import figure11_configs, measure_latency
from repro.analysis.hierarchy import analytic_breakdown, figure10_configs, figure10_rows
from repro.analysis.report import format_markdown_table, format_table
from repro.analysis.spec_eval import (
    figure12_configurations,
    run_dram_baseline,
    run_oram_configuration,
    table2_rows,
)
from repro.analysis.stash_occupancy import run_stash_occupancy_sweep
from repro.analysis.sweep import (
    measure_dummy_ratio,
    sweep_stash_size,
    sweep_utilization,
    utilization_config,
)
from repro.core.config import ORAMConfig


class TestReportFormatting:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1], ["longer-name", 2.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "longer-name" in lines[3]

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="Table 9")
        assert text.splitlines()[0] == "Table 9"

    def test_markdown_table(self):
        text = format_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[1] == "| --- | --- |"
        assert "| 1 | 2 |" in text


class TestStashOccupancyDriver:
    def test_larger_z_has_lighter_tail(self):
        results = run_stash_occupancy_sweep([1, 4], working_set_blocks=1024,
                                            num_accesses=4000, seed=1)
        tail_z1 = results[1].tail_probability(20)
        tail_z4 = results[4].tail_probability(20)
        assert tail_z1 > tail_z4

    def test_tail_probability_monotone(self):
        results = run_stash_occupancy_sweep([2], working_set_blocks=512,
                                            num_accesses=2000, seed=2)
        curve = results[2].tail_curve([1, 5, 10, 50])
        probabilities = [p for _, p in curve]
        assert probabilities == sorted(probabilities, reverse=True)
        assert all(0.0 <= p <= 1.0 for p in probabilities)


class TestSweepDrivers:
    def test_measure_dummy_ratio_returns_finite_point_for_z4(self):
        config = ORAMConfig(working_set_blocks=1024, z=4, block_bytes=128, stash_capacity=200)
        point = measure_dummy_ratio(config, num_accesses=800, seed=3)
        assert not point.aborted
        assert point.dummy_ratio < 1.0
        assert point.access_overhead >= point.theoretical_overhead

    def test_high_utilization_small_z_aborts_or_is_expensive(self):
        # Figure 8: Z=1 at high utilization is so dominated by dummy
        # accesses that the paper could not finish those configurations.
        config = utilization_config(z=1, utilization=0.8, capacity_blocks=4096)
        point = measure_dummy_ratio(config, num_accesses=600, seed=4,
                                    abort_dummy_factor=10.0)
        assert point.aborted or point.dummy_ratio > 2.0

    def test_utilization_config_hits_target_exactly(self):
        config = utilization_config(z=3, utilization=0.67, capacity_blocks=8192)
        assert config.working_set_blocks / config.capacity_blocks == pytest.approx(0.67, abs=0.01)
        assert config.total_blocks <= config.capacity_blocks

    def test_prefill_brings_oram_to_nominal_utilization(self):
        config = ORAMConfig(working_set_blocks=1024, z=4, block_bytes=128, stash_capacity=200)
        point = measure_dummy_ratio(config, num_accesses=300, seed=5, prefill=True)
        assert not point.aborted
        unfilled = measure_dummy_ratio(config, num_accesses=300, seed=5, prefill=False)
        # With prefill the ORAM holds its full working set, so eviction
        # pressure (and hence the dummy ratio) can only be higher.
        assert point.dummy_ratio >= unfilled.dummy_ratio

    def test_sweep_stash_size_covers_grid(self):
        points = sweep_stash_size([2, 3], [100, 200], working_set_blocks=1024,
                                  num_accesses=400, seed=5)
        assert len(points) == 4
        assert {(p.z, p.stash_capacity) for p in points} == {(2, 100), (2, 200), (3, 100), (3, 200)}

    def test_sweep_utilization_dummy_pressure_grows_with_utilization(self):
        points = sweep_utilization([3], [0.25, 0.5, 0.8], working_set_blocks=1024,
                                   num_accesses=500, seed=6)
        ordered = sorted(points, key=lambda p: p.utilization)
        assert len(ordered) == 3
        # Figure 8: higher utilization means more dummy accesses for a fixed Z.
        assert ordered[-1].dummy_ratio >= ordered[0].dummy_ratio
        assert all(p.access_overhead >= p.theoretical_overhead for p in ordered)


class TestHierarchyDriver:
    def test_figure10_configs_include_baseline_and_variants(self):
        configs = figure10_configs(1 / 1024, position_map_block_sizes=(12, 32))
        assert "baseORAM" in configs
        assert "DZ3Pb32" in configs and "DZ4Pb12" in configs

    def test_breakdown_row_totals(self):
        configs = figure10_configs(1 / 1024, position_map_block_sizes=(32,), data_z_values=(3,))
        row = analytic_breakdown("DZ3Pb32", configs["DZ3Pb32"])
        assert row.total_overhead == pytest.approx(sum(row.per_oram_overhead))
        assert row.total_with_dummies >= row.total_overhead

    def test_figure10_rows_with_measured_dummies(self):
        rows = figure10_rows(scale=1 / 4096, measure_dummies=True, num_accesses=150, seed=7)
        assert all(row.dummy_factor >= 1.0 for row in rows)
        names = {row.name for row in rows}
        assert "baseORAM" in names


class TestDRAMLatencyDriver:
    def test_figure11_configs(self):
        configs = figure11_configs(1.0)
        assert set(configs) == {"DZ3Pb12", "DZ3Pb32", "DZ4Pb12", "DZ4Pb32"}

    def test_measure_latency_row_relationships(self):
        configs = figure11_configs(1.0)
        row = measure_latency(configs["DZ3Pb32"], channels=2, num_accesses=4, name="DZ3Pb32")
        assert row.theoretical_cycles < row.subtree_cycles < row.naive_cycles * 1.2
        assert row.subtree_overhead >= 1.0
        assert row.naive_overhead >= row.subtree_overhead * 0.9


class TestSpecEvaluation:
    def test_table2_rows_reproduce_paper_shape(self):
        rows = {row.name: row for row in table2_rows(num_accesses=4)}
        assert set(rows) == {"baseORAM", "DZ3Pb32", "DZ4Pb32"}
        # The optimised configurations return data much faster than baseORAM
        # and need less on-chip stash storage (Table 2).
        assert rows["DZ3Pb32"].return_data_cycles < 0.75 * rows["baseORAM"].return_data_cycles
        assert rows["DZ3Pb32"].stash_kilobytes < rows["baseORAM"].stash_kilobytes
        assert rows["DZ3Pb32"].finish_access_cycles > rows["DZ3Pb32"].return_data_cycles
        assert rows["DZ4Pb32"].finish_access_cycles > rows["DZ3Pb32"].finish_access_cycles

    def test_figure12_single_benchmark_ordering(self):
        configurations = figure12_configurations(functional_scale=1 / 4096, seed=8)
        baseline = run_dram_baseline("bzip2", 1500, seed=8)
        by_name = {}
        for configuration in configurations:
            result = run_oram_configuration("bzip2", configuration, 1500, seed=8)
            by_name[configuration.name] = result.slowdown_over(baseline)
        # Every ORAM configuration is slower than DRAM, and the optimised
        # configuration beats the baseline.
        assert all(value > 1.0 for value in by_name.values())
        assert by_name["DZ3Pb32"] < by_name["baseORAM"]
