"""Hierarchical (recursive) Path ORAM tests."""

import random

import pytest

from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.core.types import Operation


@pytest.fixture
def hierarchy() -> HierarchyConfig:
    data = ORAMConfig(working_set_blocks=512, z=4, block_bytes=64, stash_capacity=150)
    return HierarchyConfig(
        data_oram=data,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=32,
        name="test",
    )


class TestConstruction:
    def test_has_multiple_orams(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(1))
        assert oram.num_orams == hierarchy.num_orams >= 2
        assert oram.data_oram is oram.orams[0]

    def test_onchip_position_map_sized_for_outermost_oram(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(1))
        outer = hierarchy.oram_configs[-1]
        assert len(oram.onchip_position_map) == outer.position_map_entries


class TestAccessCorrectness:
    def test_write_then_read(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(2))
        oram.write(10, "ten")
        assert oram.read(10).data == "ten"

    def test_random_workload_matches_reference(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(3))
        rng = random.Random(4)
        reference: dict[int, int] = {}
        working_set = hierarchy.data_oram.working_set_blocks
        for step in range(1500):
            address = rng.randrange(1, working_set + 1)
            if rng.random() < 0.5:
                reference[address] = step
                oram.write(address, step)
            else:
                result = oram.read(address)
                if address in reference:
                    assert result.data == reference[address]

    def test_every_address_reachable(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(5))
        working_set = hierarchy.data_oram.working_set_blocks
        for address in range(1, working_set + 1, 37):
            oram.write(address, address)
        for address in range(1, working_set + 1, 37):
            assert oram.read(address).data == address

    def test_stats_count_hierarchical_accesses(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(6))
        for address in range(1, 31):
            oram.access(address, Operation.READ)
        assert oram.total_real_accesses() == 30
        # Every hierarchical access touches every ORAM in the chain once.
        for underlying in oram.orams:
            assert underlying.stats.real_accesses == 30

    def test_stashes_stay_bounded(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(7))
        rng = random.Random(8)
        working_set = hierarchy.data_oram.working_set_blocks
        for _ in range(800):
            oram.access(rng.randrange(1, working_set + 1))
            for underlying in oram.orams:
                capacity = underlying.config.stash_capacity
                assert capacity is None or underlying.stash_occupancy <= capacity


class TestExclusiveInterface:
    def test_extract_insert_roundtrip(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(9))
        oram.write(5, "five")
        extracted = oram.extract(5)
        assert extracted[5] == "five"
        # The block is no longer resident: a second extract misses.
        assert oram.extract(5)[5] is None
        oram.insert(5, "five-again")
        assert oram.read(5).data == "five-again"

    def test_interface_counts_fetches_and_writebacks(self, hierarchy):
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(10))
        interface = ORAMMemoryInterface(oram)
        interface.fetch(1)
        interface.fetch(2)
        interface.writeback(1)
        assert interface.stats.fetches == 2
        assert interface.stats.writebacks == 1
        assert interface.real_accesses() >= 2

    def test_super_block_prefetch_through_interface(self):
        data = ORAMConfig(
            working_set_blocks=256, z=4, block_bytes=64, stash_capacity=150,
            super_block_size=2,
        )
        hierarchy = HierarchyConfig(
            data_oram=data, position_map_block_bytes=8,
            onchip_position_map_limit_bytes=64,
        )
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(11))
        interface = ORAMMemoryInterface(oram)
        fetched = interface.fetch(1)
        assert set(fetched) == {1, 2}
        assert interface.super_block_size == 2
        assert interface.stats.prefetched_lines == 1


class TestSingleLevelDegenerateHierarchy:
    def test_single_oram_hierarchy_works(self):
        data = ORAMConfig(working_set_blocks=128, z=4, block_bytes=32, stash_capacity=100)
        hierarchy = HierarchyConfig(
            data_oram=data, onchip_position_map_limit_bytes=1 << 20
        )
        assert hierarchy.num_orams == 1
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(12))
        for address in range(1, 129):
            oram.write(address, -address)
        for address in range(1, 129):
            assert oram.read(address).data == -address
