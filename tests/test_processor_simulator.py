"""Memory back-end and processor timing-model tests."""

import random

import pytest

from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.interface import ORAMMemoryInterface
from repro.dram.config import DRAMConfig
from repro.errors import TraceFormatError
from repro.processor.config import table1_processor
from repro.processor.memory import DRAMBackend, ORAMBackend
from repro.processor.simulator import ProcessorSimulator
from repro.processor.trace import TraceRecord, trace_footprint_bytes, validate_trace
from repro.workloads.synthetic import random_access_trace, sequential_scan_trace


class TestTraceRecords:
    def test_negative_gap_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(gap_instructions=-1, address=0)

    def test_negative_address_rejected(self):
        with pytest.raises(TraceFormatError):
            TraceRecord(gap_instructions=0, address=-4)

    def test_validate_trace_passes_good_records(self):
        records = [TraceRecord(1, 0), TraceRecord(2, 128)]
        assert list(validate_trace(records)) == records

    def test_validate_trace_rejects_foreign_objects(self):
        with pytest.raises(TraceFormatError):
            list(validate_trace([("not", "a", "record")]))

    def test_footprint(self):
        records = [TraceRecord(0, 0), TraceRecord(0, 64), TraceRecord(0, 128)]
        assert trace_footprint_bytes(records, line_bytes=128) == 2 * 128


class TestDRAMBackend:
    def test_fetch_latency_positive(self):
        backend = DRAMBackend(DRAMConfig(channels=1))
        result = backend.fetch_line(10, now_cycles=0)
        assert result.latency_cycles > 0
        assert backend.stats.fetches == 1

    def test_row_hits_cheaper_than_misses(self):
        backend = DRAMBackend(DRAMConfig(channels=1))
        miss = backend.fetch_line(0, 0).latency_cycles
        hit = backend.fetch_line(1, 0).latency_cycles
        assert hit < miss

    def test_writeback_does_not_stall(self):
        backend = DRAMBackend(DRAMConfig(channels=1))
        backend.writeback_line(5, dirty=True, now_cycles=0)
        backend.writeback_line(6, dirty=False, now_cycles=0)
        assert backend.stats.writebacks == 2
        assert backend.stats.dirty_writebacks == 1


class TestORAMBackend:
    def _backend(self, super_block_size=1):
        data = ORAMConfig(
            working_set_blocks=512, z=4, block_bytes=128, stash_capacity=150,
            super_block_size=super_block_size,
        )
        hierarchy = HierarchyConfig(
            data_oram=data, position_map_block_bytes=8,
            onchip_position_map_limit_bytes=1 << 16,
        )
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(0))
        return ORAMBackend(ORAMMemoryInterface(oram),
                           return_data_cycles=1000, finish_access_cycles=2000)

    def test_fetch_latency_is_return_data_when_idle(self):
        backend = self._backend()
        result = backend.fetch_line(3, now_cycles=0)
        assert result.latency_cycles == pytest.approx(1000)

    def test_back_to_back_fetches_wait_for_finish_access(self):
        backend = self._backend()
        backend.fetch_line(1, now_cycles=0)
        second = backend.fetch_line(2, now_cycles=100)
        # The ORAM is busy until cycle 2000; data returns 1000 cycles later.
        assert second.latency_cycles == pytest.approx(2000 - 100 + 1000)

    def test_super_block_prefetch_returns_sibling(self):
        backend = self._backend(super_block_size=2)
        result = backend.fetch_line(10, now_cycles=0)
        assert len(result.prefetched_lines) == 1
        sibling = result.prefetched_lines[0]
        assert abs(sibling - 10) == 1

    def test_writeback_counts(self):
        backend = self._backend()
        backend.fetch_line(1, now_cycles=0)
        backend.writeback_line(1, dirty=True, now_cycles=5000)
        assert backend.stats.writebacks == 1
        assert backend.stats.dirty_writebacks == 1


class TestProcessorSimulator:
    def test_streaming_trace_has_low_miss_rate(self, rng):
        config = table1_processor()
        trace = sequential_scan_trace(5000, 64 * 1024, rng)
        result = ProcessorSimulator(config, DRAMBackend(line_bytes=128)).run(trace)
        assert result.l1_miss_rate < 0.1
        assert result.memory_operations == 5000
        assert result.instructions > 5000

    def test_random_large_working_set_misses_often(self, rng):
        config = table1_processor()
        trace = random_access_trace(4000, 8 * 1024 * 1024, rng)
        result = ProcessorSimulator(config, DRAMBackend(line_bytes=128)).run(trace)
        assert result.llc_misses > 1000

    def test_oram_backend_slower_than_dram(self, rng):
        config = table1_processor()
        trace = random_access_trace(1500, 2 * 1024 * 1024, rng)
        dram_result = ProcessorSimulator(config, DRAMBackend(line_bytes=128)).run(trace)

        data = ORAMConfig(working_set_blocks=1 << 14, z=4, block_bytes=128, stash_capacity=150)
        hierarchy = HierarchyConfig(data_oram=data, position_map_block_bytes=32,
                                    onchip_position_map_limit_bytes=1 << 16)
        oram = HierarchicalPathORAM(hierarchy, rng=random.Random(1))
        backend = ORAMBackend(ORAMMemoryInterface(oram),
                              return_data_cycles=2000, finish_access_cycles=3200)
        oram_result = ProcessorSimulator(config, backend).run(trace)
        slowdown = oram_result.slowdown_over(dram_result)
        assert slowdown > 2.0

    def test_warmup_excluded_from_cycles(self, rng):
        config = table1_processor()
        trace = random_access_trace(3000, 1024 * 1024, rng)
        full = ProcessorSimulator(config, DRAMBackend(line_bytes=128)).run(trace)
        warmed = ProcessorSimulator(config, DRAMBackend(line_bytes=128)).run(
            trace, warmup_operations=1500
        )
        assert warmed.total_cycles < full.total_cycles
        assert warmed.instructions < full.instructions

    def test_cycles_per_instruction_positive(self, rng):
        config = table1_processor()
        trace = sequential_scan_trace(1000, 32 * 1024, rng)
        result = ProcessorSimulator(config, DRAMBackend(line_bytes=128)).run(trace)
        assert result.cycles_per_instruction > 0
