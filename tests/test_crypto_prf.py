"""PRF and keystream tests."""

import pytest

from repro.crypto.prf import Keystream, Prf


class TestPrf:
    def test_block_is_deterministic(self):
        prf = Prf(b"k" * 16)
        assert prf.block(1, 2, 3) == prf.block(1, 2, 3)

    def test_different_seeds_give_different_blocks(self):
        prf = Prf(b"k" * 16)
        assert prf.block(1, 2, 3) != prf.block(1, 2, 4)

    def test_different_keys_give_different_blocks(self):
        assert Prf(b"a" * 16).block(7) != Prf(b"b" * 16).block(7)

    def test_block_is_16_bytes(self):
        assert len(Prf(b"k" * 16).block(0)) == 16

    def test_keystream_length(self):
        prf = Prf(b"k" * 16)
        for length in (0, 1, 15, 16, 17, 100):
            assert len(prf.keystream(length, 9)) == length

    def test_keystream_prefix_property(self):
        prf = Prf(b"k" * 16)
        long = prf.keystream(64, 5)
        short = prf.keystream(32, 5)
        assert long[:32] == short

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"k" * 16).keystream(-1, 0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Prf(b"k" * 16, backend="des")

    def test_aes_backend_works(self):
        prf = Prf(b"k" * 16, backend="aes")
        assert len(prf.block(1)) == 16
        assert prf.block(1) == prf.block(1)
        assert prf.block(1) != prf.block(2)

    def test_backends_differ(self):
        # The two backends are different PRFs; both are valid, but their
        # outputs should not coincide.
        assert Prf(b"k" * 16).block(3) != Prf(b"k" * 16, backend="aes").block(3)

    def test_short_key_padded_for_aes_backend(self):
        prf = Prf(b"key", backend="aes")
        assert len(prf.block(0)) == 16


class TestKeystream:
    def test_apply_roundtrip(self):
        stream = Keystream(Prf(b"k" * 16))
        data = b"the quick brown fox jumps"
        encrypted = stream.apply(data, 42, 7)
        assert encrypted != data
        assert stream.apply(encrypted, 42, 7) == data

    def test_different_seed_does_not_decrypt(self):
        stream = Keystream(Prf(b"k" * 16))
        data = b"secret payload bytes"
        encrypted = stream.apply(data, 1)
        assert stream.apply(encrypted, 2) != data
