"""Common-path-length attack tests (Section 3.1.3, Figure 4)."""

import random

import pytest

from repro.attacks.cpl import (
    average_common_path_length,
    cpl_distribution,
    expected_common_path_length,
    run_cpl_attack_series,
    run_cpl_experiment,
)
from repro.errors import ConfigurationError


class TestTheory:
    def test_distribution_sums_to_one(self):
        for levels in (1, 3, 5, 10):
            assert sum(cpl_distribution(levels).values()) == pytest.approx(1.0)

    def test_distribution_probabilities(self):
        dist = cpl_distribution(5)
        assert dist[1] == pytest.approx(0.5)
        assert dist[2] == pytest.approx(0.25)
        assert dist[6] == pytest.approx(2 ** -5)

    def test_expected_value_formula(self):
        # E[CPL] = 2 - 2^-L; for L=5 this is 1.96875 (the paper's 1.969).
        assert expected_common_path_length(5) == pytest.approx(1.96875)
        dist = cpl_distribution(5)
        mean = sum(length * probability for length, probability in dist.items())
        assert mean == pytest.approx(expected_common_path_length(5))

    def test_invalid_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_common_path_length(0)
        with pytest.raises(ConfigurationError):
            cpl_distribution(0)


class TestMeasurement:
    def test_average_cpl_of_uniform_paths_matches_expectation(self):
        rng = random.Random(1)
        levels = 5
        trace = [rng.randrange(1 << levels) for _ in range(20000)]
        average = average_common_path_length(trace, levels)
        assert average == pytest.approx(expected_common_path_length(levels), abs=0.03)

    def test_needs_two_accesses(self):
        with pytest.raises(ConfigurationError):
            average_common_path_length([3], 5)


class TestAttack:
    def test_background_eviction_is_indistinguishable(self):
        result = run_cpl_experiment("background", num_accesses=3000, rng=random.Random(2))
        assert result.average_cpl == pytest.approx(result.expected_cpl, abs=0.06)
        assert abs(result.deviation) < 0.08

    def test_insecure_eviction_is_detected(self):
        result = run_cpl_experiment("insecure", num_accesses=3000, rng=random.Random(3))
        # Figure 4: the insecure scheme's eviction accesses are correlated
        # with the access that triggered them — their CPL (~1.8 vs 1.97)
        # falls clearly below the uniform expectation.
        assert result.num_trigger_pairs > 200
        assert result.deviation > 0.08

    def test_attack_separates_the_two_schemes(self):
        secure = run_cpl_experiment("background", num_accesses=3000, rng=random.Random(4))
        insecure = run_cpl_experiment("insecure", num_accesses=3000, rng=random.Random(4))
        assert insecure.trigger_pair_cpl < secure.trigger_pair_cpl - 0.05

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cpl_experiment("magic")

    def test_series_runs_requested_number_of_experiments(self):
        results = run_cpl_attack_series("background", num_experiments=3, num_accesses=400)
        assert len(results) == 3
        assert all(r.scheme == "background" for r in results)
