"""Shared fixtures for the test suite."""

import random

import pytest

from repro.core.config import HierarchyConfig, ORAMConfig


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random source."""
    return random.Random(12345)


@pytest.fixture
def small_config() -> ORAMConfig:
    """A small, fast Path ORAM configuration used across many tests."""
    return ORAMConfig(
        working_set_blocks=256,
        utilization=0.5,
        z=4,
        block_bytes=32,
        stash_capacity=120,
        name="test-small",
    )


@pytest.fixture
def tiny_config() -> ORAMConfig:
    """An even smaller configuration for exhaustive / property tests."""
    return ORAMConfig(
        working_set_blocks=32,
        utilization=0.5,
        z=2,
        block_bytes=16,
        stash_capacity=60,
        name="test-tiny",
    )


@pytest.fixture
def small_hierarchy(small_config: ORAMConfig) -> HierarchyConfig:
    """A hierarchy with at least two position-map ORAMs."""
    return HierarchyConfig(
        data_oram=small_config,
        position_map_block_bytes=8,
        position_map_z=3,
        onchip_position_map_limit_bytes=16,
        name="test-hierarchy",
    )
