"""The stable public API facade and the coalesce deprecation.

Pins the three contracts the facade satellite introduced:

* ``repro`` / ``repro.api`` export a curated, importable ``__all__`` —
  every listed name resolves, the construction entry points build both
  protocols, and the error hierarchy is reachable without deep imports.
* ``coalesce_position_ops`` is formally deprecated: constructing either
  an ``OramSpec`` or a ``HierarchicalPathORAM`` with it raises
  ``DeprecationWarning``, and the documented replacement
  (``plb_entries_per_level=1``) reproduces it bit for bit.
* The examples' import surface (what the README shows) keeps working.
"""

import random
import warnings

import pytest

import repro
import repro.api
from repro import (
    HierarchicalPathORAM,
    HierarchyConfig,
    ORAMConfig,
    OramSpec,
    PathORAM,
    ReproError,
    open_interface,
    open_oram,
    open_service,
    storage_backends,
)
from repro.serve import oram_fingerprint as fingerprint


def _flat_config(**overrides) -> ORAMConfig:
    defaults = dict(working_set_blocks=128, z=4, block_bytes=32, stash_capacity=120)
    defaults.update(overrides)
    return ORAMConfig(**defaults)


def _hierarchy() -> HierarchyConfig:
    return HierarchyConfig(
        data_oram=ORAMConfig(working_set_blocks=256, z=4, block_bytes=64, stash_capacity=150),
        position_map_block_bytes=16,
        position_map_z=4,
        onchip_position_map_limit_bytes=64,
    )


class TestFacadeExports:
    def test_every_name_in_all_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_package_all_is_facade_plus_legacy_aliases(self):
        assert set(repro.api.__all__) <= set(repro.__all__)
        assert "build_oram" in repro.__all__  # legacy alias kept importable
        assert "build_interface" in repro.__all__
        assert repro.open_oram is repro.api.open_oram

    def test_all_is_sorted_within_sections_and_unique(self):
        assert len(repro.api.__all__) == len(set(repro.api.__all__))

    def test_storage_backends_exposed(self):
        names = storage_backends()
        assert {"flat", "plain", "encrypted", "integrity"} <= set(names)

    def test_error_hierarchy_reachable_from_facade(self):
        from repro import (
            CheckpointError,
            ConfigurationError,
            DurabilityError,
            EncryptionError,
            IntegrityError,
            StashOverflowError,
            TraceFormatError,
        )

        for error in (
            ConfigurationError,
            StashOverflowError,
            IntegrityError,
            CheckpointError,
            DurabilityError,
            EncryptionError,
            TraceFormatError,
        ):
            assert issubclass(error, ReproError)


class TestOpenOram:
    def test_open_oram_flat(self):
        oram = open_oram(OramSpec(protocol="flat"), _flat_config(), seed=3)
        assert isinstance(oram, PathORAM)
        oram.write(1, b"facade")
        assert oram.read(1).data == b"facade"

    def test_open_oram_hierarchical(self):
        oram = open_oram(OramSpec(protocol="hierarchical"), _hierarchy(), seed=3)
        assert isinstance(oram, HierarchicalPathORAM)
        oram.write(5, b"deep")
        assert oram.read(5).data == b"deep"

    def test_open_oram_matches_build_oram_bit_for_bit(self):
        spec = OramSpec(protocol="hierarchical", storage="encrypted", key_seed=5)
        via_facade = open_oram(spec, _hierarchy(), seed=11)
        via_registry = repro.build_oram(spec, _hierarchy(), seed=11)
        for address in range(1, 40):
            via_facade.access(address)
            via_registry.access(address)
        assert fingerprint(via_facade) == fingerprint(via_registry)
        assert via_facade._rng.getstate() == via_registry._rng.getstate()

    def test_open_oram_accepts_explicit_rng(self):
        oram = open_oram(OramSpec(protocol="flat"), _flat_config(), rng=random.Random(9))
        assert isinstance(oram, PathORAM)

    def test_open_interface(self):
        interface = open_interface(OramSpec(protocol="flat"), _flat_config(), seed=2)
        interface.writeback(3, b"via-interface")
        assert interface.fetch(3)[3] == b"via-interface"

    def test_open_service_preregisters_instances(self):
        service = open_service(instances={"a": (OramSpec(protocol="flat"), _flat_config(), 1)})
        assert list(service.instances) == ["a"]


class TestCoalesceDeprecation:
    def test_spec_warns(self):
        with pytest.warns(DeprecationWarning, match="plb_entries_per_level=1"):
            OramSpec(protocol="hierarchical", coalesce_position_ops=True)

    def test_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="plb_entries_per_level=1"):
            HierarchicalPathORAM(_hierarchy(), rng=random.Random(1), coalesce_position_ops=True)

    def test_spec_without_flag_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            OramSpec(protocol="hierarchical", plb_entries_per_level=1)
            HierarchicalPathORAM(_hierarchy(), rng=random.Random(1), plb_entries_per_level=1)

    def test_documented_replacement_is_bit_identical(self):
        # The warning's claim, verified at the spec level: a capacity-1
        # PLB reproduces coalescing bit for bit on a fused trace.
        with pytest.warns(DeprecationWarning):
            legacy_spec = OramSpec(protocol="hierarchical", coalesce_position_ops=True)
        plb_spec = OramSpec(protocol="hierarchical", plb_entries_per_level=1)
        trace = [1 + (i * 7) % 255 for i in range(400)]
        with pytest.warns(DeprecationWarning):
            legacy = open_oram(legacy_spec, _hierarchy(), seed=4)
        modern = open_oram(plb_spec, _hierarchy(), seed=4)
        legacy.access_many(trace)
        modern.access_many(trace)
        assert fingerprint(legacy) == fingerprint(modern)
        assert legacy._rng.getstate() == modern._rng.getstate()
