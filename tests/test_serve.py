"""The ORAM-as-a-service layer: determinism, QoS and lifecycle.

The correctness anchor is **scheduler determinism**: a recorded request
script replayed through the async batching service must leave the ORAM
bit-identical — full state fingerprint including the RNG stream — to the
same requests applied serially.  Around that pin: fair-share quota
semantics (throttle accounting, starvation freedom), per-request results
(write→read round-trips through fused batches), typed error propagation
that doesn't poison neighbouring requests, and the service lifecycle.

No pytest-asyncio in the image: async paths run through ``asyncio.run``
inside plain sync tests, or through the synchronous ``run_script`` /
``serial_script`` / ``run_load`` wrappers.
"""

import asyncio

import pytest

from repro import (
    ConfigurationError,
    HierarchyConfig,
    ORAMConfig,
    OramSpec,
    OramService,
    ServiceConfig,
    open_oram,
)
from repro.serve import (
    Request,
    oram_fingerprint,
    run_load,
    run_script,
    serial_script,
    synthetic_script,
)
from repro.serve.loadgen import LoadGenConfig, percentile

FLAT = OramSpec(protocol="flat")


def _config(**overrides) -> ORAMConfig:
    defaults = dict(working_set_blocks=256, z=4, block_bytes=64, stash_capacity=150)
    defaults.update(overrides)
    return ORAMConfig(**defaults)


def _hierarchy() -> HierarchyConfig:
    return HierarchyConfig(
        data_oram=_config(),
        position_map_block_bytes=16,
        position_map_z=4,
        onchip_position_map_limit_bytes=64,
    )


def _script(length=400, seed=1, **kwargs):
    params = dict(
        tenants=["alice", "bob", "carol"],
        instances=["main"],
        working_set=256,
        write_fraction=0.2,
    )
    params.update(kwargs)
    return synthetic_script(seed=seed, length=length, **params)


class TestDeterminism:
    def test_async_replay_matches_serial(self):
        script = _script()
        instances = {"main": (FLAT, _config(), 7)}
        config = ServiceConfig(max_batch=64)
        batched = run_script(script, instances, config=config)
        serial = serial_script(script, instances, config=config)
        assert batched.fingerprint == serial.fingerprint
        assert batched.stats.fingerprint() == serial.stats.fingerprint()

    def test_async_replay_matches_plain_access_loop(self):
        # With unbounded quotas the admission order is exactly the arrival
        # order, so the service is bit-identical to a bare access() loop
        # over the same ORAM — batching must be invisible to the state.
        script = _script()
        outcome = run_script(script, {"main": (FLAT, _config(), 7)})
        oram = open_oram(FLAT, _config(), seed=7)
        for request in script:
            oram.access(request.address, op=request.op, data=request.data)
        assert dict(outcome.fingerprint[0])["main"] == oram_fingerprint(oram)

    def test_fusing_does_not_change_state(self):
        script = _script(write_fraction=0.0)
        instances = {"main": (FLAT, _config(), 3)}
        fused = run_script(script, instances, config=ServiceConfig(fuse_reads=True))
        unfused = run_script(script, instances, config=ServiceConfig(fuse_reads=False))
        assert fused.fingerprint == unfused.fingerprint
        assert fused.stats.fingerprint() == unfused.stats.fingerprint()
        assert fused.stats.fused_runs > 0
        assert unfused.stats.fused_runs == 0

    def test_repeat_runs_are_bit_identical(self):
        script = _script(length=200)
        instances = {"main": (FLAT, _config(), 5)}
        first = run_script(script, instances)
        second = run_script(script, instances)
        assert first.fingerprint == second.fingerprint
        assert first.stats.fingerprint() == second.stats.fingerprint()

    def test_quota_replay_matches_serial(self):
        # Fair-share throttling reorders admissions; the serial reference
        # drives the *same* scheduler, so the pin holds under QoS too.
        script = _script(length=300, seed=9)
        instances = {"main": (FLAT, _config(), 11)}
        quotas = {"alice": 2, "bob": 4}
        config = ServiceConfig(max_batch=32)
        batched = run_script(script, instances, config=config, quotas=quotas)
        serial = serial_script(script, instances, config=config, quotas=quotas)
        assert batched.fingerprint == serial.fingerprint
        assert batched.stats.fingerprint() == serial.stats.fingerprint()

    def test_max_batch_one_degenerates_to_serial(self):
        script = _script(length=120)
        instances = {"main": (FLAT, _config(), 2)}
        config = ServiceConfig(max_batch=1)
        one = run_script(script, instances, config=config)
        serial = serial_script(script, instances, config=config)
        assert one.fingerprint == serial.fingerprint
        # And the ORAM state (schedule-independent) matches the default
        # batched run too — batch size is invisible to the engine.
        batched = run_script(script, instances)
        assert batched.fingerprint[0] == one.fingerprint[0]

    def test_multi_instance_hierarchical_with_plb(self):
        # The serving layer composes with the recursive protocol and the
        # PLB: two instances, interleaved tenants, state pinned per name.
        spec = OramSpec(protocol="hierarchical", plb_entries_per_level=4)
        script = _script(length=300, instances=["left", "right"], seed=13)
        instances = {
            "left": (spec, _hierarchy(), 3),
            "right": (spec, _hierarchy(), 4),
        }
        config = ServiceConfig(max_batch=16)
        batched = run_script(script, instances, config=config)
        serial = serial_script(script, instances, config=config)
        assert {name for name, _ in batched.fingerprint[0]} == {"left", "right"}
        assert batched.fingerprint == serial.fingerprint

    def test_synthetic_script_is_deterministic(self):
        assert _script(seed=21) == _script(seed=21)
        assert _script(seed=21) != _script(seed=22)


class TestResultsAndErrors:
    def test_write_then_collect_read_roundtrip(self):
        async def run():
            service = OramService()
            service.open_instance("main", FLAT, _config(), seed=1)
            async with service:
                await service.submit("t", "main", 9, op="write", data=b"payload-9")
                return await service.submit("t", "main", 9, collect=True)

        result = asyncio.run(run())
        assert result.found is True
        assert result.data == b"payload-9"
        assert result.latency > 0.0

    def test_fused_reads_resolve_without_payload(self):
        async def run():
            service = OramService(ServiceConfig(fuse_reads=True))
            service.open_instance("main", FLAT, _config(), seed=1)
            async with service:
                futures = [
                    asyncio.ensure_future(service.submit("t", "main", address))
                    for address in range(1, 9)
                ]
                return await asyncio.gather(*futures)

        results = asyncio.run(run())
        assert len(results) == 8
        assert all(r.found is None and r.data is None for r in results)
        assert all(r.latency > 0.0 for r in results)

    def test_request_error_does_not_poison_batch(self):
        async def run():
            service = OramService()
            service.open_instance("main", FLAT, _config(), seed=1)
            async with service:
                bad = asyncio.ensure_future(service.submit("t", "main", 10_000, collect=True))
                good = asyncio.ensure_future(service.submit("t", "main", 3))
                await asyncio.gather(bad, good, return_exceptions=True)
                return bad.exception(), good.result()

        error, good_result = asyncio.run(run())
        assert isinstance(error, ConfigurationError)
        assert good_result.address == 3

    def test_unknown_instance_rejected_at_submit(self):
        async def run():
            service = OramService()
            service.open_instance("main", FLAT, _config(), seed=1)
            async with service:
                with pytest.raises(ConfigurationError, match="unknown instance"):
                    await service.submit("t", "nope", 1)

        asyncio.run(run())

    def test_submit_requires_started_service(self):
        service = OramService()
        service.open_instance("main", FLAT, _config(), seed=1)
        with pytest.raises(ConfigurationError, match="not started"):
            service.submit_nowait(Request(tenant="t", instance="main", address=1))

    def test_duplicate_instance_name_rejected(self):
        service = OramService()
        service.open_instance("main", FLAT, _config(), seed=1)
        with pytest.raises(ConfigurationError, match="already"):
            service.open_instance("main", FLAT, _config(), seed=2)


class TestQoS:
    def test_quota_throttles_heavy_tenant(self):
        # One tenant floods, one trickles; the flood gets capped per round
        # and the accounting records every deferral.
        script = []
        for i in range(120):
            script.append(Request(tenant="heavy", instance="main", address=1 + i % 64))
        for i in range(12):
            script.append(Request(tenant="light", instance="main", address=1 + i))
        quotas = {"heavy": 4}
        outcome = run_script(
            script,
            {"main": (FLAT, _config(), 6)},
            config=ServiceConfig(max_batch=64),
            quotas=quotas,
        )
        heavy = outcome.stats.tenants["heavy"]
        light = outcome.stats.tenants["light"]
        assert heavy.requests == 120
        assert light.requests == 12
        assert heavy.throttled > 0
        assert light.throttled == 0
        # Quota of 4/round over 120 requests needs >= 30 scheduler rounds.
        assert outcome.stats.rounds >= 30

    def test_unbounded_quota_never_throttles(self):
        outcome = run_script(_script(), {"main": (FLAT, _config(), 6)})
        assert all(t.throttled == 0 for t in outcome.stats.tenants.values())

    def test_per_tenant_accounting_totals(self):
        script = _script(length=250, seed=17)
        outcome = run_script(script, {"main": (FLAT, _config(), 1)})
        tenants = outcome.stats.tenants
        assert sum(t.requests for t in tenants.values()) == len(script)
        by_hand = {}
        for request in script:
            by_hand[request.tenant] = by_hand.get(request.tenant, 0) + 1
        assert {name: t.requests for name, t in tenants.items()} == by_hand
        for t in tenants.values():
            assert t.reads + t.writes == t.requests
            assert len(t.latency_samples) == t.requests
            assert t.mean_latency > 0.0


class TestLifecycle:
    def test_context_manager_starts_and_closes(self):
        async def run():
            service = OramService()
            service.open_instance("main", FLAT, _config(), seed=1)
            async with service:
                await service.submit("t", "main", 1)
            return service

        service = asyncio.run(run())
        with pytest.raises(ConfigurationError, match="not started"):
            service.submit_nowait(Request(tenant="t", instance="main", address=1))

    def test_drain_waits_for_outstanding(self):
        async def run():
            service = OramService()
            service.open_instance("main", FLAT, _config(), seed=1)
            await service.start()
            futures = [
                service.submit_nowait(Request(tenant="t", instance="main", address=a))
                for a in range(1, 20)
            ]
            await service.drain()
            done = all(f.done() for f in futures)
            await service.aclose()
            return done

        assert asyncio.run(run())

    def test_attach_existing_oram(self):
        oram = open_oram(FLAT, _config(), seed=2)
        oram.write(7, b"pre-existing")
        service = OramService()
        service.attach_instance("main", oram)

        async def run():
            async with service:
                return await service.submit("t", "main", 7, collect=True)

        assert asyncio.run(run()).data == b"pre-existing"


class TestLoadGen:
    def test_report_shape_and_consistency(self):
        load = LoadGenConfig(
            tenants=2,
            clients_per_tenant=2,
            requests_per_client=25,
            working_set=256,
            seed=3,
        )
        report = run_load({"main": (FLAT, _config(), 4)}, load=load)
        assert report.requests == load.total_requests == 100
        assert report.duration > 0.0
        assert report.throughput_rps > 0.0
        assert 0.0 < report.p50_ms <= report.p99_ms <= report.max_ms
        assert set(report.per_tenant) == {"tenant-00", "tenant-01"}
        assert sum(t["requests"] for t in report.per_tenant.values()) == 100
        record = report.as_record()
        assert record["requests"] == 100
        assert record["p99_ms"] >= record["p50_ms"]

    def test_unknown_load_instance_rejected(self):
        load = LoadGenConfig(instance="elsewhere")
        with pytest.raises(ConfigurationError, match="elsewhere"):
            run_load({"main": (FLAT, _config(), 4)}, load=load)

    def test_percentile_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 0.50) == 50.0
        assert percentile(samples, 0.99) == 99.0
        assert percentile([7.0], 0.99) == 7.0


class TestServiceConfigValidation:
    def test_max_batch_floor(self):
        with pytest.raises(ConfigurationError, match="max_batch"):
            ServiceConfig(max_batch=0)

    def test_negative_quota(self):
        with pytest.raises(ConfigurationError, match="quota"):
            ServiceConfig(default_quota=-1)

    def test_fuse_min_run_floor(self):
        with pytest.raises(ConfigurationError, match="fuse_min_run"):
            ServiceConfig(fuse_min_run=0)
