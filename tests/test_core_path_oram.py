"""PathORAM protocol tests: correctness, invariants, eviction, failure."""

import random

import pytest

from repro.core.background_eviction import BackgroundEviction, NoEviction
from repro.core.config import ORAMConfig
from repro.core.path_oram import PathORAM
from repro.core.tree import EncryptedTreeStorage
from repro.core.types import Operation
from repro.crypto.bucket_encryption import CounterBucketCipher
from repro.crypto.keys import ProcessorKey
from repro.errors import ConfigurationError, StashOverflowError


def check_invariant(oram: PathORAM) -> None:
    """Every block must lie on the path to its mapped leaf, or in the stash."""
    config = oram.config
    mapper = oram.super_block_mapper
    seen: set[int] = set()
    for bucket_index in range(config.num_buckets):
        for block in oram.storage.read_bucket(bucket_index):
            assert block.address not in seen, "duplicate block in tree"
            seen.add(block.address)
            leaf = oram.position_map.lookup(mapper.group_of(block.address))
            assert bucket_index in oram.storage.path(leaf), (
                f"block {block.address} stored off its mapped path"
            )
    for address in oram.stash_addresses():
        assert address not in seen, "block duplicated between stash and tree"


class TestBasicAccess:
    def test_write_then_read(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        oram.write(1, "hello")
        assert oram.read(1).data == "hello"

    def test_read_of_never_written_address(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        result = oram.read(17)
        assert result.found is False
        assert result.data is None

    def test_many_writes_and_reads(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        reference: dict[int, int] = {}
        for step in range(2000):
            address = rng.randrange(1, small_config.working_set_blocks + 1)
            if rng.random() < 0.5:
                reference[address] = step
                oram.write(address, step)
            else:
                expected = reference.get(address)
                result = oram.read(address)
                if expected is not None:
                    assert result.data == expected

    def test_overwrite_replaces_value(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        oram.write(5, "first")
        oram.write(5, "second")
        assert oram.read(5).data == "second"

    def test_out_of_range_address_rejected(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        with pytest.raises(ConfigurationError):
            oram.access(0)
        with pytest.raises(ConfigurationError):
            oram.access(small_config.working_set_blocks + 1)

    def test_access_remaps_block_to_new_leaf(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        oram.write(1, "x")
        leaves = set()
        for _ in range(30):
            oram.read(1)
            leaves.add(oram.position_map.lookup(oram.super_block_mapper.group_of(1)))
        # With many remaps over many leaves, we should see several leaves.
        assert len(leaves) > 3

    def test_invariant_holds_after_random_workload(self, tiny_config, rng):
        oram = PathORAM(tiny_config, rng=rng)
        for _ in range(500):
            address = rng.randrange(1, tiny_config.working_set_blocks + 1)
            oram.access(address, Operation.WRITE, address)
        check_invariant(oram)

    def test_stats_count_real_accesses(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        for address in range(1, 51):
            oram.read(address)
        assert oram.stats.real_accesses == 50
        assert oram.stats.path_reads >= 50
        assert oram.stats.path_writes >= 50


class TestObliviousness:
    def test_path_trace_records_all_accesses(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng, record_path_trace=True)
        for address in range(1, 21):
            oram.read(address)
        assert len(oram.path_trace) >= 20
        assert all(0 <= leaf < small_config.num_leaves for leaf in oram.path_trace)

    def test_repeated_access_to_same_block_looks_random(self, small_config):
        # Accessing the same block repeatedly must still visit fresh random
        # paths (because of remapping); the trace should not repeat a single
        # leaf.
        oram = PathORAM(small_config, rng=random.Random(3), record_path_trace=True)
        for _ in range(64):
            oram.read(7)
        assert len(set(oram.path_trace)) > 10


class TestDummyAccess:
    def test_dummy_access_does_not_grow_stash(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        for address in range(1, 101):
            oram.write(address, address)
        before = oram.stash_occupancy
        for _ in range(20):
            oram.dummy_access()
            assert oram.stash_occupancy <= before
            before = oram.stash_occupancy

    def test_dummy_access_counted_separately(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        oram.dummy_access()
        oram.dummy_access()
        assert oram.stats.dummy_accesses == 2
        assert oram.stats.real_accesses == 0

    def test_dummy_access_preserves_data(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        for address in range(1, 51):
            oram.write(address, address * 11)
        for _ in range(50):
            oram.dummy_access()
        for address in range(1, 51):
            assert oram.read(address).data == address * 11


class TestStashFailure:
    def test_unbounded_stash_never_fails(self):
        config = ORAMConfig(working_set_blocks=512, z=1, block_bytes=16, stash_capacity=None)
        oram = PathORAM(config, eviction_policy=NoEviction(), rng=random.Random(5))
        for _ in range(2000):
            oram.access(random.Random(5).randrange(1, 513))
        assert oram.max_stash_occupancy > 0

    def test_z1_without_eviction_overflows_small_stash(self):
        # Figure 3: Z=1 with no background eviction accumulates blocks and
        # eventually exceeds a small stash.
        config = ORAMConfig(
            working_set_blocks=2048, z=1, block_bytes=16, stash_capacity=30
        )
        oram = PathORAM(config, eviction_policy=NoEviction(), rng=random.Random(7))
        rng = random.Random(8)
        with pytest.raises(StashOverflowError):
            for _ in range(20000):
                oram.access(rng.randrange(1, 2049))

    def test_background_eviction_prevents_failure_for_same_config(self):
        config = ORAMConfig(
            working_set_blocks=2048, z=1, block_bytes=16, stash_capacity=30
        )
        oram = PathORAM(config, eviction_policy=BackgroundEviction(), rng=random.Random(7))
        rng = random.Random(8)
        for _ in range(3000):
            oram.access(rng.randrange(1, 2049))
        assert oram.stash_occupancy <= config.stash_capacity
        assert oram.stats.dummy_accesses > 0


class TestExclusiveAPI:
    def test_extract_removes_block(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        oram.write(3, "payload")
        extracted = oram.extract(3)
        assert extracted[3] == "payload"
        # After extraction the block is gone; a read misses.
        assert oram.read(3).found is False

    def test_insert_returns_block_to_oram(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        oram.write(3, "payload")
        oram.extract(3)
        oram.insert(3, "updated")
        assert oram.read(3).data == "updated"

    def test_extract_returns_whole_super_block(self, rng):
        config = ORAMConfig(
            working_set_blocks=256, z=4, block_bytes=32, stash_capacity=150,
            super_block_size=2,
        )
        oram = PathORAM(config, rng=rng)
        oram.write(1, "a")
        oram.write(2, "b")
        extracted = oram.extract(1)
        assert set(extracted) == {1, 2}
        assert extracted[2] == "b"

    def test_extract_never_written_address_still_returns_entry(self, small_config, rng):
        oram = PathORAM(small_config, rng=rng)
        extracted = oram.extract(42)
        assert 42 in extracted and extracted[42] is None


class TestEncryptedBackend:
    def test_oram_works_over_encrypted_storage(self, rng):
        config = ORAMConfig(working_set_blocks=64, z=4, block_bytes=32, stash_capacity=80)
        storage = EncryptedTreeStorage(config, CounterBucketCipher(ProcessorKey(seed=3)))
        oram = PathORAM(config, storage=storage, rng=rng)
        for address in range(1, 65):
            oram.write(address, bytes([address]) * 4)
        for address in range(1, 65):
            assert oram.read(address).data == bytes([address]) * 4

    def test_adversary_sees_only_changing_ciphertext(self, rng):
        config = ORAMConfig(working_set_blocks=64, z=4, block_bytes=32, stash_capacity=80)
        storage = EncryptedTreeStorage(config, CounterBucketCipher(ProcessorKey(seed=3)))
        oram = PathORAM(config, storage=storage, rng=rng)
        oram.write(1, b"secret")
        root_before = storage.raw_bucket(0)
        oram.read(1)
        root_after = storage.raw_bucket(0)
        assert root_before != root_after
