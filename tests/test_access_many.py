"""Differential tests for the trace-at-once execution path.

``access_many`` must be bit-for-bit identical to calling ``access`` once
per trace element: same tree contents, same stash, same position map, same
statistics, same RNG stream, for every protocol and storage stack.  These
tests replay the same trace through both paths on independently seeded
twins and compare full state fingerprints.
"""

import random

import pytest

from repro.backends import OramSpec, build_oram, storage_backends
from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.hierarchical import HierarchicalPathORAM
from repro.core.types import Operation, TraceResult
from repro.errors import ConfigurationError

#: Storage stacks every differential case runs over.  ``numpy-flat`` joins
#: automatically when NumPy is importable (the registry omits it otherwise,
#: which is itself asserted in test_backends).
STACKS = [name for name in ("flat", "plain", "encrypted", "numpy-flat")
          if name in storage_backends()]


def oram_fingerprint(oram):
    """Full observable state of one PathORAM (tree, stash, map, stats)."""
    storage = oram.storage
    tree = tuple(
        tuple((block.address, block.leaf, repr(block.data))
              for block in storage.read_bucket(index))
        for index in range(storage.num_buckets)
    )
    stash = tuple(sorted(
        (block.address, block.leaf, repr(block.data))
        for block in oram._stash.blocks()
    ))
    stats = oram.stats
    return (
        tree,
        stash,
        tuple(oram.position_map.leaves),
        stats.real_accesses,
        stats.dummy_accesses,
        stats.path_reads,
        stats.path_writes,
        stats.blocks_read,
        stats.blocks_written,
        tuple(stats.stash_occupancy_samples),
        oram.max_stash_occupancy,
        storage.occupancy(),
    )


def fingerprint(oram):
    if isinstance(oram, HierarchicalPathORAM):
        return tuple(oram_fingerprint(sub) for sub in oram.orams) + (
            tuple(oram.onchip_position_map.leaves),
            oram.stats.real_accesses,
            oram.stats.dummy_accesses,
        )
    return oram_fingerprint(oram)


def random_trace(working_set: int, length: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    return [rng.randrange(1, working_set + 1) for _ in range(length)]


class TestFlatAccessMany:
    @pytest.mark.parametrize("storage", STACKS)
    def test_access_many_matches_looped_access(self, storage):
        config = ORAMConfig(
            working_set_blocks=256, z=4, block_bytes=64, stash_capacity=100
        )
        spec = OramSpec(protocol="flat", storage=storage)
        trace = random_trace(256, 1200, seed=3)
        looped = build_oram(spec, config, seed=7)
        fused = build_oram(spec, config, seed=7)
        for address in trace:
            looped.access(address)
        result = fused.access_many(trace)
        assert fingerprint(looped) == fingerprint(fused)
        assert looped._rng.getstate() == fused._rng.getstate()
        assert result.accesses == len(trace)

    def test_eviction_heavy_config_stays_identical(self):
        # Z=1 at high utilization forces background-eviction dummy storms;
        # the fused loop must interleave them exactly like the access loop.
        config = ORAMConfig(
            working_set_blocks=512, utilization=0.8, z=1,
            block_bytes=64, stash_capacity=40,
        )
        spec = OramSpec(
            protocol="flat", storage="flat",
            eviction="background", livelock_limit=200_000,
        )
        trace = random_trace(512, 2000, seed=6)
        looped = build_oram(spec, config, seed=9)
        fused = build_oram(spec, config, seed=9)
        dummy_total = 0
        for address in trace:
            dummy_total += looped.access(address).dummy_accesses
        result = fused.access_many(trace)
        assert looped.stats.dummy_accesses > 0, "config must exercise eviction"
        assert result.dummy_accesses == dummy_total
        assert fingerprint(looped) == fingerprint(fused)
        assert looped._rng.getstate() == fused._rng.getstate()

    def test_writes_and_found_counts(self):
        config = ORAMConfig(
            working_set_blocks=128, z=4, block_bytes=64, stash_capacity=80
        )
        spec = OramSpec(protocol="flat", storage="flat")
        trace = random_trace(128, 500, seed=2)
        looped = build_oram(spec, config, seed=5)
        fused = build_oram(spec, config, seed=5)
        found = 0
        for address in trace:
            found += looped.access(address, Operation.WRITE, b"payload").found
        result = fused.access_many(trace, Operation.WRITE, b"payload")
        assert result == TraceResult(
            accesses=len(trace), found=found, dummy_accesses=result.dummy_accesses
        )
        assert fingerprint(looped) == fingerprint(fused)

    def test_occupancy_recording_matches(self):
        config = ORAMConfig(
            working_set_blocks=256, z=2, block_bytes=64, stash_capacity=None
        )
        spec = OramSpec(protocol="flat", storage="flat", eviction="none")
        trace = random_trace(256, 1500, seed=4)
        looped = build_oram(spec, config, seed=1)
        fused = build_oram(spec, config, seed=1)
        looped.stats.record_occupancy = True
        fused.stats.record_occupancy = True
        for address in trace:
            looped.access(address)
        fused.access_many(trace)
        assert (
            looped.stats.stash_occupancy_samples
            == fused.stats.stash_occupancy_samples
        )
        assert fingerprint(looped) == fingerprint(fused)

    def test_invalid_address_raises_before_any_access(self):
        config = ORAMConfig(
            working_set_blocks=64, z=4, block_bytes=64, stash_capacity=60
        )
        oram = build_oram(OramSpec(protocol="flat", storage="flat"), config, seed=3)
        with pytest.raises(ConfigurationError):
            oram.access_many([1, 2, 65])
        # Up-front validation: nothing ran.
        assert oram.stats.real_accesses == 0

    def test_super_block_config_falls_back_identically(self):
        config = ORAMConfig(
            working_set_blocks=128, z=4, block_bytes=64,
            stash_capacity=100, super_block_size=2,
        )
        spec = OramSpec(protocol="flat", storage="flat")
        trace = random_trace(128, 400, seed=8)
        looped = build_oram(spec, config, seed=2)
        fused = build_oram(spec, config, seed=2)
        for address in trace:
            looped.access(address)
        fused.access_many(trace)
        assert fingerprint(looped) == fingerprint(fused)


class TestHierarchicalAccessMany:
    def _hierarchy(self, z: int = 3, stash_capacity: int = 60) -> HierarchyConfig:
        data = ORAMConfig(
            working_set_blocks=512, z=z, block_bytes=64,
            stash_capacity=stash_capacity,
        )
        return HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            onchip_position_map_limit_bytes=128,
        )

    @pytest.mark.parametrize("storage", STACKS)
    def test_access_many_matches_looped_access(self, storage):
        hierarchy = self._hierarchy()
        spec = OramSpec(protocol="hierarchical", storage=storage)
        trace = random_trace(512, 800, seed=5)
        looped = build_oram(spec, hierarchy, seed=7)
        fused = build_oram(spec, hierarchy, seed=7)
        for address in trace:
            looped.access(address)
        result = fused.access_many(trace)
        assert fingerprint(looped) == fingerprint(fused)
        assert looped._rng.getstate() == fused._rng.getstate()
        assert result.accesses == len(trace)

    def test_dummy_rounds_interleave_identically(self):
        # A tight data stash triggers hierarchy-wide dummy rounds.
        data = ORAMConfig(
            working_set_blocks=1024, z=2, block_bytes=128, stash_capacity=40
        )
        hierarchy = HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            onchip_position_map_limit_bytes=256,
        )
        spec = OramSpec(protocol="hierarchical", storage="flat")
        trace = random_trace(1024, 6000, seed=9)
        looped = build_oram(spec, hierarchy, seed=7)
        fused = build_oram(spec, hierarchy, seed=7)
        rounds = 0
        for address in trace:
            rounds += looped.access(address).dummy_accesses
        result = fused.access_many(trace)
        assert looped.stats.dummy_accesses > 0, "config must exercise dummy rounds"
        assert result.dummy_accesses == rounds
        assert fingerprint(looped) == fingerprint(fused)
        assert looped._rng.getstate() == fused._rng.getstate()

    def test_super_block_data_oram_matches(self):
        data = ORAMConfig(
            working_set_blocks=256, z=4, block_bytes=64,
            stash_capacity=100, super_block_size=2,
        )
        hierarchy = HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            onchip_position_map_limit_bytes=128,
        )
        spec = OramSpec(protocol="hierarchical", storage="flat")
        trace = random_trace(256, 600, seed=4)
        looped = build_oram(spec, hierarchy, seed=6)
        fused = build_oram(spec, hierarchy, seed=6)
        for address in trace:
            looped.access(address)
        fused.access_many(trace)
        assert fingerprint(looped) == fingerprint(fused)


class TestColumnEngineDifferential:
    """The column-native engine must be bit-identical to the *list-backed*
    flat stack — not merely self-consistent: same tree layout (within-bucket
    order included, via ``read_bucket``), same stash contents, same RNG
    stream, same statistics.  These tests replay one trace on twin ORAMs
    that differ only in storage stack and compare full fingerprints."""

    def _twins(self, config, seed):
        pytest.importorskip("numpy")
        flat = build_oram(OramSpec(protocol="flat", storage="flat"), config, seed=seed)
        columnar = build_oram(
            OramSpec(protocol="flat", storage="numpy-flat"), config, seed=seed
        )
        assert columnar._column_engine is not None, "engine must attach"
        return flat, columnar

    def test_reads_bit_identical_to_list_backed_stack(self):
        config = ORAMConfig(
            working_set_blocks=256, z=4, block_bytes=64, stash_capacity=100
        )
        trace = random_trace(256, 1500, seed=3)
        flat, columnar = self._twins(config, seed=7)
        flat.access_many(trace)
        columnar.access_many(trace)
        assert fingerprint(flat) == fingerprint(columnar)
        assert flat._rng.getstate() == columnar._rng.getstate()

    def test_writes_and_payload_column_bit_identical(self):
        config = ORAMConfig(
            working_set_blocks=128, z=4, block_bytes=64, stash_capacity=80
        )
        trace = random_trace(128, 600, seed=2)
        flat, columnar = self._twins(config, seed=5)
        r1 = flat.access_many(trace, Operation.WRITE, b"payload")
        r2 = columnar.access_many(trace, Operation.WRITE, b"payload")
        assert r1 == r2
        assert fingerprint(flat) == fingerprint(columnar)
        # the write flipped the stack's payload column on
        assert columnar.storage.has_payloads

    def test_eviction_storm_bit_identical(self):
        # Z=1 at high utilization: constant spills into the stash and
        # background-eviction dummy storms exercise the engine's stash
        # boundary (spill materialisation, stash placement, dummy ops).
        config = ORAMConfig(
            working_set_blocks=512, utilization=0.8, z=1,
            block_bytes=64, stash_capacity=40,
        )
        pytest.importorskip("numpy")
        trace = random_trace(512, 2000, seed=6)
        orams = [
            build_oram(
                OramSpec(
                    protocol="flat", storage=storage,
                    eviction="background", livelock_limit=200_000,
                ),
                config,
                seed=9,
            )
            for storage in ("flat", "numpy-flat")
        ]
        results = [oram.access_many(trace) for oram in orams]
        assert orams[0].stats.dummy_accesses > 0, "config must exercise eviction"
        assert results[0] == results[1]
        assert fingerprint(orams[0]) == fingerprint(orams[1])
        assert orams[0]._rng.getstate() == orams[1]._rng.getstate()

    def test_occupancy_recording_bit_identical(self):
        config = ORAMConfig(
            working_set_blocks=256, z=2, block_bytes=64, stash_capacity=None
        )
        pytest.importorskip("numpy")
        trace = random_trace(256, 1000, seed=4)
        orams = [
            build_oram(
                OramSpec(protocol="flat", storage=storage, eviction="none"),
                config,
                seed=1,
            )
            for storage in ("flat", "numpy-flat")
        ]
        for oram in orams:
            oram.stats.record_occupancy = True
            oram.access_many(trace)
        assert (
            orams[0].stats.stash_occupancy_samples
            == orams[1].stats.stash_occupancy_samples
        )
        assert fingerprint(orams[0]) == fingerprint(orams[1])

    def test_hierarchical_chain_bit_identical(self):
        pytest.importorskip("numpy")
        data = ORAMConfig(
            working_set_blocks=512, z=3, block_bytes=64, stash_capacity=60
        )
        hierarchy = HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            onchip_position_map_limit_bytes=128,
        )
        trace = random_trace(512, 800, seed=5)
        orams = [
            build_oram(OramSpec(protocol="hierarchical", storage=storage), hierarchy, seed=7)
            for storage in ("flat", "numpy-flat")
        ]
        for oram in orams:
            oram.access_many(trace)
        assert fingerprint(orams[0]) == fingerprint(orams[1])
        assert orams[0]._rng.getstate() == orams[1]._rng.getstate()

    def test_single_access_paths_bit_identical(self):
        # The engine also backs access(), dummy_access() and the recursive
        # chain's per-level op outside access_many.
        config = ORAMConfig(
            working_set_blocks=128, z=4, block_bytes=64, stash_capacity=100
        )
        flat, columnar = self._twins(config, seed=11)
        trace = random_trace(128, 300, seed=9)
        for address in trace:
            flat.access(address)
            columnar.access(address)
        flat.dummy_access()
        columnar.dummy_access()
        assert fingerprint(flat) == fingerprint(columnar)
        assert flat._rng.getstate() == columnar._rng.getstate()


def _local_trace(working_set: int, length: int, seed: int) -> list[int]:
    """Sequential runs with occasional jumps — position-map locality."""
    rng = random.Random(seed)
    address = rng.randrange(1, working_set + 1)
    trace = []
    for _ in range(length):
        if rng.random() < 0.1:
            address = rng.randrange(1, working_set + 1)
        else:
            address = address % working_set + 1
        trace.append(address)
    return trace


class TestChainCoalescing:
    """Position-map path-op coalescing: fewer physical ops, same results."""

    def _hierarchy(self) -> HierarchyConfig:
        data = ORAMConfig(
            working_set_blocks=512, z=3, block_bytes=64, stash_capacity=60
        )
        return HierarchyConfig(
            data_oram=data,
            position_map_block_bytes=8,
            position_map_z=3,
            onchip_position_map_limit_bytes=128,
        )

    @pytest.mark.parametrize("storage", STACKS)
    def test_coalescing_reduces_ops_with_unchanged_results(self, storage):
        hierarchy = self._hierarchy()
        trace = _local_trace(512, 2500, seed=4)
        payload = {address: bytes([address % 256]) for address in set(trace)}
        plain = build_oram(
            OramSpec(protocol="hierarchical", storage=storage), hierarchy, seed=6
        )
        coalescing = build_oram(
            OramSpec(
                protocol="hierarchical", storage=storage,
                coalesce_position_ops=True,
            ),
            hierarchy,
            seed=6,
        )
        if storage in ("plain", "encrypted"):
            # Stacks without a fused chain op (the reference list-of-lists
            # storage, serialising storages) fall back to per-access
            # semantics: nothing coalesces.
            coalescing.access_many(trace)
            assert sum(o.stats.coalesced_ops for o in coalescing.orams) == 0
            return
        plain_results = [
            plain.access_many(trace[:1250]),
            plain.access_many(trace[1250:], Operation.WRITE, b"x"),
        ]
        coalesced_results = [
            coalescing.access_many(trace[:1250]),
            coalescing.access_many(trace[1250:], Operation.WRITE, b"x"),
        ]
        # Same logical outcome...
        assert [ (r.accesses, r.found) for r in plain_results ] == [
            (r.accesses, r.found) for r in coalesced_results
        ]
        # ...from measurably fewer position-map path operations.  The
        # per-ORAM real-access counters count exactly the chain's physical
        # ops (dummy-eviction rounds land in dummy_accesses, which may
        # legitimately differ between the two runs), so the saved ops
        # match the coalesced counter exactly.
        coalesced = sum(o.stats.coalesced_ops for o in coalescing.orams)
        assert coalesced > 0
        plain_pm_ops = sum(o.stats.real_accesses for o in plain.orams[1:])
        coal_pm_ops = sum(o.stats.real_accesses for o in coalescing.orams[1:])
        assert plain_pm_ops - coal_pm_ops == coalesced
        # Data-ORAM ops are never coalesced.
        assert plain.orams[0].stats.coalesced_ops == 0
        assert coalescing.orams[0].stats.real_accesses >= len(trace)
        # Block conservation against the non-coalescing twin: every ORAM
        # holds the same number of real blocks either way.
        for plain_oram, coal_oram in zip(plain.orams, coalescing.orams):
            assert (
                coal_oram.stash_occupancy + coal_oram.storage.occupancy()
                == plain_oram.stash_occupancy + plain_oram.storage.occupancy()
            )
        for address in sorted(payload):
            assert (
                coalescing.read(address).data == plain.read(address).data
            )

    def test_coalescing_is_off_by_default(self):
        hierarchy = self._hierarchy()
        oram = build_oram(
            OramSpec(protocol="hierarchical", storage="flat"), hierarchy, seed=2
        )
        assert not oram.coalesce_position_ops
        oram.access_many(_local_trace(512, 600, seed=1))
        assert sum(o.stats.coalesced_ops for o in oram.orams) == 0

    def test_flat_spec_rejects_coalescing(self):
        with pytest.raises(ConfigurationError):
            OramSpec(protocol="flat", coalesce_position_ops=True)


class TestBlockPool:
    def test_extract_recycles_and_creation_reuses(self):
        config = ORAMConfig(
            working_set_blocks=64, z=4, block_bytes=64, stash_capacity=100
        )
        oram = build_oram(OramSpec(protocol="flat", storage="flat"), config, seed=1)
        oram.access_many(range(1, 65))
        assert not oram._block_pool
        extracted = oram.extract(5)
        assert 5 in extracted
        assert oram._block_pool, "extraction must feed the free-list"
        shell = oram._block_pool[-1]
        # The next miss-created block reuses the recycled shell.
        oram.access_many([5])
        assert oram.contains(5)
        assert shell.address == 5
