"""DRAM configuration, address mapping and timing-model tests."""

import pytest

from repro.dram.address_mapping import AddressMapping
from repro.dram.config import DDR3Timing, DRAMConfig
from repro.dram.dram_model import DRAMModel
from repro.errors import ConfigurationError


class TestDRAMConfig:
    def test_default_geometry_matches_paper(self):
        config = DRAMConfig()
        # DDR3_micron: 1024 columns x 64-bit bus => 8 KB row buffer.
        assert config.row_buffer_bytes == 8 * 1024
        assert config.access_granularity_bytes == 64
        assert config.banks_per_channel == 8
        assert config.rows_per_bank == 16384

    def test_subtree_node_scales_with_channels(self):
        assert DRAMConfig(channels=1).subtree_node_bytes == 8 * 1024
        assert DRAMConfig(channels=4).subtree_node_bytes == 32 * 1024

    def test_capacity(self):
        config = DRAMConfig(channels=2)
        assert config.total_capacity_bytes == 2 * config.channel_capacity_bytes

    def test_peak_cycles_scale_inverse_with_channels(self):
        one = DRAMConfig(channels=1).peak_cycles_for_bytes(1 << 20)
        four = DRAMConfig(channels=4).peak_cycles_for_bytes(1 << 20)
        assert one == pytest.approx(4 * four)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            DDR3Timing(t_cas=0)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            DRAMConfig(channels=0)

    def test_refresh_overhead_small(self):
        assert 0.0 < DDR3Timing().refresh_overhead < 0.05


class TestAddressMapping:
    def test_adjacent_bursts_rotate_channels_first(self):
        mapping = AddressMapping(DRAMConfig(channels=4))
        locations = [mapping.locate(i * 64) for i in range(8)]
        assert [loc.channel for loc in locations] == [0, 1, 2, 3, 0, 1, 2, 3]
        # Same column group until all channels consumed.
        assert locations[0].column == locations[3].column
        assert locations[4].column == locations[0].column + 1

    def test_columns_before_banks_before_rows(self):
        config = DRAMConfig(channels=1)
        mapping = AddressMapping(config)
        bursts_per_row = config.row_buffer_bytes // 64
        same_row = mapping.locate((bursts_per_row - 1) * 64)
        next_bank = mapping.locate(bursts_per_row * 64)
        assert same_row.bank == 0 and same_row.row == 0
        assert next_bank.bank == 1 and next_bank.row == 0
        next_row = mapping.locate(bursts_per_row * config.banks_per_channel * 64)
        assert next_row.bank == 0 and next_row.row == 1

    def test_split_range_covers_whole_span(self):
        mapping = AddressMapping(DRAMConfig(channels=2))
        locations = mapping.split_range(100, 300)
        # Bytes 100..399 touch bursts 1..6 (64-byte granularity).
        assert len(locations) == 6

    def test_split_empty_range(self):
        mapping = AddressMapping(DRAMConfig())
        assert mapping.split_range(0, 0) == []

    def test_negative_address_rejected(self):
        with pytest.raises(ConfigurationError):
            AddressMapping(DRAMConfig()).locate(-1)


class TestDRAMModelTiming:
    def test_row_hit_faster_than_row_miss(self):
        model = DRAMModel(DRAMConfig(channels=1))
        first = model.enqueue_address(0)  # row miss (cold)
        second = model.enqueue_address(64) - first  # row hit, pipelined
        assert second < first

    def test_row_hits_stream_at_burst_rate(self):
        config = DRAMConfig(channels=1)
        model = DRAMModel(config)
        model.enqueue_address(0)
        completions = [model.enqueue_address(i * 64) for i in range(1, 33)]
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert all(gap == pytest.approx(config.timing.t_burst) for gap in gaps)

    def test_row_conflict_pays_precharge_and_activate(self):
        config = DRAMConfig(channels=1)
        model = DRAMModel(config)
        bursts_per_row = config.row_buffer_bytes // 64
        rows_stride = bursts_per_row * config.banks_per_channel * 64
        model.enqueue_address(0)
        same_bank_other_row = model.enqueue_address(rows_stride)
        model.reset()
        model.enqueue_address(0)
        same_row = model.enqueue_address(64)
        assert same_bank_other_row > same_row + config.timing.row_miss_penalty - 1

    def test_channels_overlap_transfers(self):
        nbytes = 64 * 256
        single = DRAMModel(DRAMConfig(channels=1))
        single.enqueue_range(0, nbytes)
        quad = DRAMModel(DRAMConfig(channels=4))
        quad.enqueue_range(0, nbytes)
        assert quad.elapsed_cycles() < single.elapsed_cycles() / 2

    def test_latency_never_beats_peak_bandwidth(self):
        config = DRAMConfig(channels=2)
        model = DRAMModel(config)
        nbytes = 64 * 512
        model.enqueue_range(0, nbytes)
        assert model.elapsed_cycles(include_refresh=False) >= config.peak_cycles_for_bytes(nbytes)

    def test_stats_track_hits_and_misses(self):
        model = DRAMModel(DRAMConfig(channels=1))
        model.enqueue_range(0, 64 * 16)
        stats = model.stats
        assert stats.transactions == 16
        assert stats.row_misses >= 1
        assert stats.row_hits == stats.transactions - stats.row_misses
        assert 0.0 <= stats.row_hit_rate <= 1.0

    def test_reset_clears_state(self):
        model = DRAMModel(DRAMConfig())
        model.enqueue_range(0, 1024)
        model.reset()
        assert model.elapsed_cycles() == 0
        assert model.stats.transactions == 0
