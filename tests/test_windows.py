"""Window-sharded single-experiment runs: plan math and parallel identity."""

import pytest

from repro.analysis.spec_eval import (
    figure12_configurations,
    run_oram_trace_replay,
    run_oram_trace_replay_sharded,
)
from repro.analysis.stash_occupancy import (
    run_stash_occupancy_experiment,
    run_stash_occupancy_sharded,
)
from repro.analysis.sweep import (
    measure_dummy_ratio,
    measure_dummy_ratio_sharded,
    measure_dummy_ratio_window,
)
from repro.core.config import ORAMConfig
from repro.core.stats import AccessStats
from repro.runner import WindowPlan, merge_counters, run_windows


class TestWindowPlan:
    def test_split_distributes_remainder(self):
        plan = WindowPlan.split("exp", 0, total_accesses=10, windows=3)
        assert plan.window_accesses == (4, 3, 3)
        assert plan.total_accesses == 10
        assert plan.num_windows == 3

    def test_split_caps_windows_at_total(self):
        plan = WindowPlan.split("exp", 0, total_accesses=2, windows=5)
        assert plan.num_windows == 2
        assert plan.total_accesses == 2

    def test_split_rejects_nonpositive_windows(self):
        with pytest.raises(ValueError):
            WindowPlan.split("exp", 0, total_accesses=10, windows=0)

    def test_split_of_zero_accesses_yields_one_empty_window(self):
        plan = WindowPlan.split("exp", 0, total_accesses=0, windows=4)
        assert plan.num_windows == 1
        assert plan.window_accesses == (0,)
        assert plan.total_accesses == 0

    def test_window_seeds_are_distinct_and_stable(self):
        plan = WindowPlan.split("exp", 42, total_accesses=100, windows=4)
        seeds = [plan.window_seed(index) for index in range(4)]
        assert len(set(seeds)) == 4
        assert seeds == [plan.window_seed(index) for index in range(4)]
        other = WindowPlan.split("other-exp", 42, total_accesses=100, windows=4)
        assert other.window_seed(0) != plan.window_seed(0)


class TestShardedSweep:
    CONFIG = ORAMConfig(
        working_set_blocks=256, z=4, block_bytes=64, stash_capacity=120
    )

    def test_sharded_process_equals_serial(self):
        serial = measure_dummy_ratio_sharded(
            self.CONFIG, 600, windows=3, seed=5, executor="serial"
        )
        parallel = measure_dummy_ratio_sharded(
            self.CONFIG, 600, windows=3, seed=5, executor="process"
        )
        assert serial == parallel

    def test_sharded_stats_merge_matches_manual_windows(self):
        plan = WindowPlan.split(
            key=("sweep-shard", self.CONFIG.name or "",
                 self.CONFIG.z, self.CONFIG.stash_capacity),
            base_seed=5,
            total_accesses=600,
            windows=3,
        )
        merged = AccessStats()
        for index, accesses in enumerate(plan.window_accesses):
            stats, reason = measure_dummy_ratio_window(
                self.CONFIG, accesses, seed=plan.window_seed(index)
            )
            assert reason is None
            merged.merge(stats)
        point = measure_dummy_ratio_sharded(
            self.CONFIG, 600, windows=3, seed=5, executor="serial"
        )
        assert point.dummy_ratio == merged.dummy_ratio
        assert not point.aborted

    def test_single_window_shard_equals_plain_measure(self):
        plan = WindowPlan.split(
            key=("sweep-shard", self.CONFIG.name or "",
                 self.CONFIG.z, self.CONFIG.stash_capacity),
            base_seed=9,
            total_accesses=400,
            windows=1,
        )
        sharded = measure_dummy_ratio_sharded(
            self.CONFIG, 400, windows=1, seed=9
        )
        direct = measure_dummy_ratio(
            self.CONFIG, 400, seed=plan.window_seed(0)
        )
        assert sharded == direct


class TestShardedStashOccupancy:
    def test_sharded_process_equals_serial(self):
        serial = run_stash_occupancy_sharded(
            2, 256, num_accesses=900, windows=3, seed=4, executor="serial"
        )
        parallel = run_stash_occupancy_sharded(
            2, 256, num_accesses=900, windows=3, seed=4, executor="process"
        )
        assert serial.samples == parallel.samples
        assert len(serial.samples) == 900

    def test_pooled_samples_are_window_concatenation(self):
        plan = WindowPlan.split(
            key=("fig3-shard", 2, 256), base_seed=4,
            total_accesses=900, windows=3,
        )
        expected = []
        for index, accesses in enumerate(plan.window_accesses):
            window = run_stash_occupancy_experiment(
                2, 256, num_accesses=accesses, seed=plan.window_seed(index)
            )
            expected.extend(window.samples)
        pooled = run_stash_occupancy_sharded(
            2, 256, num_accesses=900, windows=3, seed=4
        )
        assert pooled.samples == expected


class TestShardedSpecReplay:
    def test_sharded_process_equals_serial(self):
        configuration = figure12_configurations(functional_scale=1 / 4096, seed=8)[0]
        serial = run_oram_trace_replay_sharded(
            "bzip2", configuration, 600, windows=2, seed=8, executor="serial"
        )
        parallel = run_oram_trace_replay_sharded(
            "bzip2", configuration, 600, windows=2, seed=8, executor="process"
        )
        assert serial == parallel
        assert serial.accesses == 600
        assert serial.dummy_factor >= 1.0

    def test_replay_counts_cover_trace(self):
        configuration = figure12_configurations(functional_scale=1 / 4096, seed=8)[0]
        result = run_oram_trace_replay("mcf", configuration, 300, seed=3)
        assert result.accesses == 300
        assert 0 <= result.found <= 300
        assert result.benchmark == "mcf"


class TestRunWindowsGeneric:
    def test_run_windows_passes_sizes_and_seeds(self):
        plan = WindowPlan.split("generic", 7, total_accesses=10, windows=4)
        values = run_windows(_echo_window, plan, kwargs={"tag": "x"})
        sizes = [value[0] for value in values]
        seeds = [value[1] for value in values]
        assert sizes == list(plan.window_accesses)
        assert seeds == [plan.window_seed(index) for index in range(4)]
        assert all(value[2] == "x" for value in values)


def _echo_window(num_accesses, seed, tag):
    return (num_accesses, seed, tag)


class TestMergeCounters:
    def test_merge_over_empty_values_is_all_zero(self):
        assert merge_counters([], ["real_accesses", "dummy_accesses"]) == {
            "real_accesses": 0,
            "dummy_accesses": 0,
        }

    def test_merge_with_no_fields_is_empty(self):
        stats = AccessStats()
        stats.real_accesses = 3
        assert merge_counters([stats], []) == {}
