"""Background eviction policies and super-block mapping tests."""

import random

import pytest

from repro.core.background_eviction import (
    BackgroundEviction,
    InsecureBlockRemapEviction,
    NoEviction,
)
from repro.core.config import ORAMConfig
from repro.core.path_oram import PathORAM
from repro.core.super_block import StaticSuperBlockMapper
from repro.errors import ConfigurationError, ReproError


class TestBackgroundEviction:
    def test_stash_kept_below_threshold_after_each_access(self):
        config = ORAMConfig(working_set_blocks=1024, z=2, block_bytes=16, stash_capacity=60)
        oram = PathORAM(config, eviction_policy=BackgroundEviction(), rng=random.Random(1))
        rng = random.Random(2)
        threshold = config.eviction_threshold
        for _ in range(1500):
            oram.access(rng.randrange(1, 1025))
            assert oram.stash_occupancy <= threshold

    def test_smaller_z_needs_more_dummy_accesses(self):
        # Figures 7/8: Z=1 issues far more dummy accesses than Z=4.  The
        # stash is kept tight (C = 60) so Z = 1 sees solid eviction pressure
        # within a short run; at C = 100 the seed measured only ~1% dummies,
        # which made the comparison hostage to tie-break order in the
        # write-back.
        ratios = {}
        for z in (1, 4):
            config = ORAMConfig(
                working_set_blocks=1024, z=z, block_bytes=16, stash_capacity=60
            )
            oram = PathORAM(config, eviction_policy=BackgroundEviction(), rng=random.Random(3))
            rng = random.Random(4)
            for _ in range(1200):
                oram.access(rng.randrange(1, 1025))
            ratios[z] = oram.stats.dummy_ratio
        assert ratios[1] > ratios[4]
        assert ratios[4] < 0.5

    def test_no_eviction_policy_never_issues_dummies(self, small_config, rng):
        oram = PathORAM(small_config, eviction_policy=NoEviction(), rng=rng)
        for address in range(1, 101):
            oram.access(address)
        assert oram.stats.dummy_accesses == 0

    def test_livelock_limit_raises(self):
        policy = BackgroundEviction(livelock_limit=1)

        class _StuckORAM:
            """An ORAM whose stash never drains."""

            def __init__(self):
                self.config = ORAMConfig(
                    working_set_blocks=1024, z=2, block_bytes=16, stash_capacity=60
                )
                self.stash_occupancy = 10_000

            def dummy_access(self):
                pass

        with pytest.raises(ReproError):
            policy.after_access(_StuckORAM())

    def test_invalid_livelock_limit_rejected(self):
        with pytest.raises(ValueError):
            BackgroundEviction(livelock_limit=0)


class TestInsecureEviction:
    def test_insecure_eviction_also_bounds_stash(self):
        config = ORAMConfig(working_set_blocks=512, z=1, block_bytes=16, stash_capacity=20)
        oram = PathORAM(
            config,
            eviction_policy=InsecureBlockRemapEviction(rng=random.Random(9)),
            rng=random.Random(10),
        )
        rng = random.Random(11)
        for _ in range(800):
            oram.access(rng.randrange(1, 513))
            assert oram.stash_occupancy <= config.stash_capacity

    def test_insecure_eviction_preserves_data(self):
        config = ORAMConfig(working_set_blocks=128, z=1, block_bytes=16, stash_capacity=20)
        oram = PathORAM(
            config,
            eviction_policy=InsecureBlockRemapEviction(rng=random.Random(1)),
            rng=random.Random(2),
        )
        for address in range(1, 129):
            oram.write(address, address * 3)
        for address in range(1, 129):
            assert oram.read(address).data == address * 3


class TestStaticSuperBlockMapper:
    def test_size_one_maps_each_address_to_own_group(self):
        mapper = StaticSuperBlockMapper(1)
        assert mapper.group_of(1) == 0
        assert mapper.group_of(17) == 16
        assert mapper.addresses_in_group(4) == [5]

    def test_adjacent_addresses_share_group(self):
        mapper = StaticSuperBlockMapper(2)
        assert mapper.group_of(1) == mapper.group_of(2) == 0
        assert mapper.group_of(3) == mapper.group_of(4) == 1
        assert mapper.addresses_in_group(1) == [3, 4]

    def test_group_size_four(self):
        mapper = StaticSuperBlockMapper(4)
        assert mapper.addresses_in_group(0) == [1, 2, 3, 4]
        assert all(mapper.group_of(a) == 0 for a in (1, 2, 3, 4))
        assert mapper.group_of(5) == 1

    def test_num_groups_rounds_up(self):
        mapper = StaticSuperBlockMapper(4)
        assert mapper.num_groups(9) == 3
        assert mapper.num_groups(8) == 2

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            StaticSuperBlockMapper(0)
        mapper = StaticSuperBlockMapper(2)
        with pytest.raises(ConfigurationError):
            mapper.group_of(0)
        with pytest.raises(ConfigurationError):
            mapper.addresses_in_group(-1)
        with pytest.raises(ConfigurationError):
            mapper.num_groups(0)


class TestSuperBlockORAMBehaviour:
    def test_super_block_members_share_leaf(self):
        config = ORAMConfig(
            working_set_blocks=256, z=4, block_bytes=32, stash_capacity=150,
            super_block_size=2,
        )
        oram = PathORAM(config, rng=random.Random(1))
        rng = random.Random(2)
        for _ in range(300):
            oram.access(rng.randrange(1, 257))
        # The position map is keyed by group, so both members trivially share
        # a leaf; additionally every tree-resident member must sit on that path.
        for bucket_index in range(config.num_buckets):
            for block in oram.storage.read_bucket(bucket_index):
                group = oram.super_block_mapper.group_of(block.address)
                leaf = oram.position_map.lookup(group)
                assert bucket_index in oram.storage.path(leaf)

    def test_super_block_access_returns_correct_data(self):
        config = ORAMConfig(
            working_set_blocks=64, z=4, block_bytes=32, stash_capacity=120,
            super_block_size=4,
        )
        oram = PathORAM(config, rng=random.Random(5))
        for address in range(1, 65):
            oram.write(address, address + 100)
        for address in range(1, 65):
            assert oram.read(address).data == address + 100

    def test_position_map_entries_shrink_with_super_blocks(self):
        base = ORAMConfig(working_set_blocks=256, z=4, stash_capacity=None)
        merged = base.with_updates(super_block_size=4)
        assert merged.position_map_entries == base.position_map_entries // 4
