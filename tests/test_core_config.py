"""ORAMConfig and HierarchyConfig tests."""

import math

import pytest

from repro.core.config import HierarchyConfig, ORAMConfig
from repro.core.presets import (
    PAPER_WORKING_SET_BLOCKS,
    base_oram,
    dz3pb12,
    dz3pb32,
    dz4pb32,
    make_hierarchy,
    scaled_working_set_blocks,
)
from repro.errors import ConfigurationError


class TestDerivedGeometry:
    def test_total_blocks_follows_utilization(self):
        config = ORAMConfig(working_set_blocks=1000, utilization=0.25, z=4)
        assert config.total_blocks == 4000

    def test_levels_cover_required_buckets(self):
        config = ORAMConfig(working_set_blocks=1000, utilization=0.5, z=4)
        assert config.num_buckets >= math.ceil(config.total_blocks / config.z)
        # And one fewer level would not suffice.
        assert (1 << config.levels) - 1 < math.ceil(config.total_blocks / config.z)

    def test_num_leaves_and_buckets_consistent(self):
        config = ORAMConfig(working_set_blocks=500, z=2)
        assert config.num_buckets == 2 * config.num_leaves - 1
        assert config.num_levels == config.levels + 1

    def test_capacity_at_least_total_blocks(self):
        for z in (1, 2, 3, 4, 8):
            config = ORAMConfig(working_set_blocks=777, z=z, stash_capacity=None)
            assert config.capacity_blocks >= config.total_blocks

    def test_paper_scale_data_oram_geometry(self):
        # 4 GB working set of 128-byte blocks at 50% utilization => 8 GB ORAM.
        config = ORAMConfig(working_set_blocks=PAPER_WORKING_SET_BLOCKS, z=4)
        assert config.total_blocks == 2 * PAPER_WORKING_SET_BLOCKS
        assert config.levels == 24
        assert config.address_bits == 26

    def test_blocks_per_path(self):
        config = ORAMConfig(working_set_blocks=100, z=3, stash_capacity=None)
        assert config.blocks_per_path == 3 * (config.levels + 1)


class TestBucketSizing:
    def test_counter_bucket_bits(self):
        config = ORAMConfig(working_set_blocks=1 << 20, z=4, block_bytes=128)
        expected = 4 * (config.leaf_bits + config.address_bits + 1024) + 64
        assert config.bucket_bits == expected

    def test_strawman_bucket_bits_larger(self):
        counter = ORAMConfig(working_set_blocks=1 << 16, z=4, encryption="counter")
        strawman = counter.with_updates(encryption="strawman")
        assert strawman.bucket_bits > counter.bucket_bits

    def test_bucket_padded_to_dram_granularity(self):
        config = ORAMConfig(working_set_blocks=1 << 16, z=3, block_bytes=128)
        assert config.bucket_bytes % 64 == 0
        assert config.bucket_bytes * 8 >= config.bucket_bits

    def test_small_pmap_blocks_share_padded_size(self):
        # The paper notes 16-byte and 32-byte position-map blocks both pad
        # to a 128-byte bucket (Section 4.1.5).
        pb16 = ORAMConfig(working_set_blocks=1 << 20, z=3, block_bytes=16, stash_capacity=None)
        pb32 = ORAMConfig(working_set_blocks=1 << 20, z=3, block_bytes=32, stash_capacity=None)
        assert pb16.bucket_bytes == pb32.bucket_bytes == 128

    def test_path_bytes(self):
        config = ORAMConfig(working_set_blocks=4096, z=4)
        assert config.path_bytes == (config.levels + 1) * config.bucket_bytes


class TestValidation:
    def test_zero_working_set_rejected(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(working_set_blocks=0)

    def test_bad_utilization_rejected(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(working_set_blocks=10, utilization=0.0)
        with pytest.raises(ConfigurationError):
            ORAMConfig(working_set_blocks=10, utilization=1.5)

    def test_bad_z_rejected(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(working_set_blocks=10, z=0)

    def test_unknown_encryption_rejected(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(working_set_blocks=10, encryption="rot13")

    def test_stash_smaller_than_path_rejected(self):
        with pytest.raises(ConfigurationError):
            ORAMConfig(working_set_blocks=1 << 16, z=4, stash_capacity=10)

    def test_eviction_threshold(self):
        config = ORAMConfig(working_set_blocks=1 << 14, z=4, stash_capacity=200)
        assert config.eviction_threshold == 200 - config.blocks_per_path
        unbounded = config.with_updates(stash_capacity=None)
        assert unbounded.eviction_threshold is None


class TestConstructors:
    def test_from_total_blocks(self):
        config = ORAMConfig.from_total_blocks(4096, utilization=0.25, z=2, stash_capacity=None)
        assert config.working_set_blocks == 1024
        assert config.total_blocks == 4096

    def test_from_working_set_bytes(self):
        config = ORAMConfig.from_working_set_bytes(1 << 20, block_bytes=128)
        assert config.working_set_blocks == (1 << 20) // 128

    def test_with_updates_preserves_other_fields(self):
        config = ORAMConfig(working_set_blocks=512, z=3, name="orig")
        updated = config.with_updates(z=4)
        assert updated.z == 4
        assert updated.working_set_blocks == 512
        assert updated.name == "orig"

    def test_describe_mentions_key_parameters(self):
        text = ORAMConfig(working_set_blocks=512, z=3, name="demo").describe()
        assert "Z=3" in text and "demo" in text


class TestHierarchyConfig:
    def test_recursion_terminates_below_limit(self, small_hierarchy):
        configs = small_hierarchy.oram_configs
        assert configs[-1].position_map_bits <= small_hierarchy.onchip_position_map_limit_bytes * 8
        assert small_hierarchy.num_orams == len(configs)

    def test_intermediate_maps_exceed_limit(self, small_hierarchy):
        # Every ORAM except the last must have needed another level.
        for config in small_hierarchy.oram_configs[:-1]:
            assert config.position_map_bits > small_hierarchy.onchip_position_map_limit_bytes * 8

    def test_position_map_capacity_chain(self, small_hierarchy):
        configs = small_hierarchy.oram_configs
        for parent_index in range(1, len(configs)):
            child = configs[parent_index - 1]
            parent = configs[parent_index]
            k = small_hierarchy.labels_per_position_block(child)
            assert parent.working_set_blocks * k >= child.position_map_entries

    def test_single_oram_when_map_fits(self):
        config = ORAMConfig(working_set_blocks=128, z=4, block_bytes=32, stash_capacity=None)
        hierarchy = HierarchyConfig(data_oram=config, onchip_position_map_limit_bytes=1 << 20)
        assert hierarchy.num_orams == 1

    def test_too_small_pmap_block_rejected(self):
        config = ORAMConfig(working_set_blocks=1 << 20, z=4)
        hierarchy = HierarchyConfig(data_oram=config, position_map_block_bytes=1)
        with pytest.raises(ConfigurationError):
            _ = hierarchy.oram_configs

    def test_describe_lists_every_oram(self, small_hierarchy):
        text = small_hierarchy.describe()
        assert text.count("ORAM") >= small_hierarchy.num_orams


class TestPresets:
    def test_scaled_working_set(self):
        assert scaled_working_set_blocks(1.0) == PAPER_WORKING_SET_BLOCKS
        assert scaled_working_set_blocks(1 / 1024) == PAPER_WORKING_SET_BLOCKS // 1024

    def test_base_oram_uses_strawman_and_z4(self):
        hierarchy = base_oram(1 / 1024)
        assert hierarchy.data_oram.z == 4
        assert hierarchy.data_oram.encryption == "strawman"
        assert hierarchy.position_map_block_bytes == 128

    def test_dz3pb32_uses_counter_and_z3(self):
        hierarchy = dz3pb32(1 / 1024)
        assert hierarchy.data_oram.z == 3
        assert hierarchy.data_oram.encryption == "counter"
        assert hierarchy.position_map_block_bytes == 32

    def test_dz4pb32_z(self):
        assert dz4pb32(1 / 1024).data_oram.z == 4

    def test_paper_scale_hierarchy_position_map_under_200kb(self):
        hierarchy = dz3pb32(1.0)
        assert hierarchy.onchip_position_map_bits / 8 <= 200 * 1024

    def test_smaller_pmap_blocks_need_more_orams(self):
        assert dz3pb12(1.0).num_orams >= dz3pb32(1.0).num_orams

    def test_super_block_size_propagates(self):
        hierarchy = make_hierarchy(scale=1 / 1024, super_block_size=2)
        assert hierarchy.data_oram.super_block_size == 2
