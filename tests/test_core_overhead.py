"""Analytic overhead and storage model tests (Section 2.4, Equations 1-2)."""

import pytest

from repro.core.config import ORAMConfig
from repro.core.overhead import (
    bytes_moved_per_access,
    hierarchy_measured_access_overhead,
    hierarchy_overhead_breakdown,
    hierarchy_theoretical_access_overhead,
    measured_access_overhead,
    onchip_storage,
    single_oram_onchip_storage,
    theoretical_access_overhead,
)
from repro.core.presets import base_oram, dz3pb32, dz4pb32
from repro.core.stats import AccessStats


class TestSingleORAMOverhead:
    def test_theoretical_formula(self):
        config = ORAMConfig(working_set_blocks=1 << 16, z=4, block_bytes=128)
        expected = 2 * (config.levels + 1) * config.padded_bucket_bits / config.block_bits
        assert theoretical_access_overhead(config) == pytest.approx(expected)

    def test_bytes_moved_per_access(self):
        config = ORAMConfig(working_set_blocks=1 << 14, z=3, block_bytes=128)
        assert bytes_moved_per_access(config) == 2 * (config.levels + 1) * config.bucket_bytes

    def test_measured_overhead_scales_with_dummy_ratio(self):
        config = ORAMConfig(working_set_blocks=1 << 14, z=3, block_bytes=128)
        stats = AccessStats(real_accesses=1000, dummy_accesses=500)
        assert measured_access_overhead(config, stats) == pytest.approx(
            1.5 * theoretical_access_overhead(config)
        )

    def test_no_accesses_gives_theoretical(self):
        config = ORAMConfig(working_set_blocks=1 << 14, z=3)
        assert measured_access_overhead(config, AccessStats()) == pytest.approx(
            theoretical_access_overhead(config)
        )

    def test_overhead_grows_with_z(self):
        base = ORAMConfig(working_set_blocks=1 << 16, z=2, block_bytes=128)
        bigger = base.with_updates(z=4)
        assert theoretical_access_overhead(bigger) > theoretical_access_overhead(base)

    def test_overhead_grows_roughly_linearly_with_log_capacity(self):
        # Figure 9: latency grows linearly as capacity grows exponentially.
        overheads = []
        for exponent in (12, 14, 16, 18):
            config = ORAMConfig(working_set_blocks=1 << exponent, z=3, block_bytes=128)
            overheads.append(theoretical_access_overhead(config))
        deltas = [b - a for a, b in zip(overheads, overheads[1:])]
        assert all(d > 0 for d in deltas)
        assert max(deltas) / min(deltas) < 1.6


class TestHierarchyOverhead:
    def test_breakdown_sums_to_total(self):
        hierarchy = dz3pb32(1 / 1024)
        breakdown = hierarchy_overhead_breakdown(hierarchy)
        assert sum(breakdown) == pytest.approx(hierarchy_theoretical_access_overhead(hierarchy))
        assert len(breakdown) == hierarchy.num_orams

    def test_data_oram_dominates_breakdown(self):
        hierarchy = dz3pb32(1 / 64)
        breakdown = hierarchy_overhead_breakdown(hierarchy)
        assert breakdown[0] == max(breakdown)

    def test_measured_overhead_with_dummy_rounds(self):
        hierarchy = dz3pb32(1 / 1024)
        theoretical = hierarchy_theoretical_access_overhead(hierarchy)
        assert hierarchy_measured_access_overhead(hierarchy, 100, 25) == pytest.approx(
            1.25 * theoretical
        )
        assert hierarchy_measured_access_overhead(hierarchy, 0, 0) == pytest.approx(theoretical)

    def test_dz3pb32_beats_baseline_at_paper_scale(self):
        # The headline claim: the optimised configuration reduces ORAM
        # access overhead by roughly 40% relative to baseORAM.
        base = hierarchy_theoretical_access_overhead(base_oram(1.0))
        optimised = hierarchy_theoretical_access_overhead(dz3pb32(1.0))
        reduction = 1 - optimised / base
        assert 0.25 < reduction < 0.60

    def test_dz4_worse_than_dz3(self):
        assert hierarchy_theoretical_access_overhead(dz4pb32(1.0)) > (
            hierarchy_theoretical_access_overhead(dz3pb32(1.0))
        )


class TestOnChipStorage:
    def test_storage_fields_positive(self):
        storage = onchip_storage(dz3pb32(1.0))
        assert storage.stash_bytes > 0
        assert storage.position_map_bytes > 0
        assert storage.stash_kilobytes == pytest.approx(storage.stash_bytes / 1024)

    def test_paper_scale_position_map_below_limit(self):
        storage = onchip_storage(dz3pb32(1.0))
        assert storage.position_map_kilobytes <= 200

    def test_table2_stash_sizes_match_paper_magnitude(self):
        # Table 2: baseORAM stash 77 KB, DZ3Pb32 stash 47 KB.
        base = onchip_storage(base_oram(1.0)).stash_kilobytes
        optimised = onchip_storage(dz3pb32(1.0)).stash_kilobytes
        assert 60 < base < 95
        assert 35 < optimised < 60
        assert optimised < base

    def test_single_oram_storage(self):
        config = ORAMConfig(working_set_blocks=1 << 14, z=4, stash_capacity=200)
        storage = single_oram_onchip_storage(config)
        assert storage.stash_bytes == (config.stash_bits + 7) // 8
        assert storage.position_map_bytes == (config.position_map_bits + 7) // 8
