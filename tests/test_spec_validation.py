"""Every ``OramSpec`` validation error path, and ``with_updates`` edges.

``OramSpec`` is the picklable scenario descriptor every driver builds
through; a bad spec must fail **eagerly at construction** with a typed
``ConfigurationError`` naming the offending knob, never inside a pool
worker.  This suite walks each ``__post_init__`` rejection and the
``with_updates`` copy semantics (conflict-introducing updates re-run the
same validation; the dataclass stays frozen).
"""

import pickle

import pytest

from repro import ConfigurationError, OramSpec, storage_backends

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

# The memmap-flat stack is registered alongside the optional NumPy import;
# only the tests that *construct* a memmap-flat spec need it to exist.
requires_memmap = pytest.mark.skipif(
    "memmap-flat" not in storage_backends(),
    reason="memmap-flat stack unavailable (NumPy not installed)",
)


class TestRegistryLookups:
    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            OramSpec(protocol="onion")

    def test_unknown_storage(self):
        with pytest.raises(ConfigurationError, match="unknown storage stack"):
            OramSpec(storage="tape")

    def test_unknown_eviction(self):
        with pytest.raises(ConfigurationError, match="unknown eviction policy"):
            OramSpec(eviction="random")


class TestProtocolConflicts:
    def test_hierarchical_rejects_nondefault_eviction(self):
        with pytest.raises(ConfigurationError, match="hierarchy level"):
            OramSpec(protocol="hierarchical", eviction="background")

    def test_hierarchical_rejects_create_on_miss_off(self):
        with pytest.raises(ConfigurationError, match="create_on_miss"):
            OramSpec(protocol="hierarchical", create_on_miss=False)

    def test_flat_rejects_coalesce(self):
        with pytest.raises(ConfigurationError, match="no position-map chain"):
            OramSpec(protocol="flat", coalesce_position_ops=True)

    def test_flat_rejects_plb(self):
        with pytest.raises(ConfigurationError, match="no position-map chain"):
            OramSpec(protocol="flat", plb_entries_per_level=2)

    def test_flat_rejects_compressed_position_map(self):
        with pytest.raises(ConfigurationError, match="no position-map chain"):
            OramSpec(protocol="flat", compressed_position_map=True)

    def test_negative_plb_capacity(self):
        with pytest.raises(ConfigurationError, match="plb_entries_per_level"):
            OramSpec(protocol="hierarchical", plb_entries_per_level=-1)


class TestMemmapOptionGating:
    def test_storage_path_requires_memmap_stack(self):
        with pytest.raises(ConfigurationError, match="memmap-flat"):
            OramSpec(storage="flat", storage_path="/tmp/somewhere")

    @requires_memmap
    def test_unknown_memmap_sync(self):
        with pytest.raises(ConfigurationError, match="memmap_sync"):
            OramSpec(storage="memmap-flat", memmap_sync="eventually")

    @requires_memmap
    def test_memmap_history_floor(self):
        with pytest.raises(ConfigurationError, match="memmap_history"):
            OramSpec(storage="memmap-flat", memmap_history=0)

    def test_memmap_sync_meaningless_off_memmap_stack(self):
        with pytest.raises(ConfigurationError, match="only meaningful"):
            OramSpec(storage="flat", memmap_sync="relaxed")

    def test_memmap_history_meaningless_off_memmap_stack(self):
        with pytest.raises(ConfigurationError, match="only meaningful"):
            OramSpec(storage="encrypted", memmap_history=2)

    def test_memmap_defaults_fine_on_any_stack(self):
        # The defaults are inert knobs; only *tuning* them off-stack errors.
        spec = OramSpec(storage="flat")
        assert spec.memmap_sync == "strict"
        assert spec.memmap_history == 4

    @requires_memmap
    def test_memmap_stack_accepts_tuning(self):
        spec = OramSpec(storage="memmap-flat", memmap_sync="relaxed", memmap_history=2)
        assert spec.memmap_sync == "relaxed"


class TestDynamicSuperBlockKnobs:
    def test_rejects_insecure_eviction(self):
        with pytest.raises(ConfigurationError, match="insecure"):
            OramSpec(dynamic_super_blocks=True, eviction="insecure")

    def test_rejects_coalesce_combination(self):
        with pytest.raises(ConfigurationError, match="dynamic_super_blocks"):
            OramSpec(
                protocol="hierarchical",
                dynamic_super_blocks=True,
                coalesce_position_ops=True,
            )

    def test_max_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            OramSpec(dynamic_super_blocks=True, super_block_max_size=3)

    def test_window_floor(self):
        with pytest.raises(ConfigurationError, match="window"):
            OramSpec(dynamic_super_blocks=True, super_block_window=0)

    def test_merge_threshold_floor(self):
        with pytest.raises(ConfigurationError, match="merge_threshold"):
            OramSpec(dynamic_super_blocks=True, super_block_merge_threshold=0)

    def test_split_threshold_floor(self):
        with pytest.raises(ConfigurationError, match="split_threshold"):
            OramSpec(dynamic_super_blocks=True, super_block_split_threshold=0)

    def test_bad_knobs_ignored_when_feature_off(self):
        # Knob validation is scoped to the feature: a disabled mapper
        # doesn't reject its (unused) parameters.
        spec = OramSpec(super_block_max_size=3, super_block_window=0)
        assert not spec.dynamic_super_blocks


class TestWithUpdates:
    def test_roundtrip_replaces_fields(self):
        base = OramSpec(protocol="hierarchical", storage="encrypted", key_seed=9)
        updated = base.with_updates(plb_entries_per_level=4)
        assert updated.plb_entries_per_level == 4
        assert updated.storage == "encrypted"
        assert updated.key_seed == 9
        assert base.plb_entries_per_level == 0  # original untouched

    def test_noop_update_is_equal(self):
        base = OramSpec(protocol="hierarchical")
        assert base.with_updates() == base

    def test_conflicting_update_revalidates(self):
        base = OramSpec(protocol="flat")
        with pytest.raises(ConfigurationError, match="no position-map chain"):
            base.with_updates(plb_entries_per_level=1)

    def test_update_to_unknown_storage_revalidates(self):
        base = OramSpec(protocol="flat")
        with pytest.raises(ConfigurationError, match="unknown storage stack"):
            base.with_updates(storage="punchcards")

    @requires_memmap
    def test_update_introducing_memmap_conflict(self):
        base = OramSpec(storage="memmap-flat", memmap_sync="relaxed")
        with pytest.raises(ConfigurationError, match="only meaningful"):
            base.with_updates(storage="flat")

    @requires_memmap
    def test_update_can_resolve_conflict_in_one_step(self):
        base = OramSpec(storage="memmap-flat", memmap_sync="relaxed")
        flat = base.with_updates(storage="flat", memmap_sync="strict")
        assert flat.storage == "flat"

    def test_frozen(self):
        spec = OramSpec()
        with pytest.raises(AttributeError):
            spec.storage = "encrypted"

    def test_spec_is_picklable_and_hashable(self):
        spec = OramSpec(protocol="hierarchical", plb_entries_per_level=2)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert isinstance(hash(spec), int)
