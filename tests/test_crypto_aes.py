"""AES-128 block cipher tests, including the FIPS-197 vectors."""

import pytest

from repro.crypto.aes import AES128
from repro.errors import EncryptionError


class TestFIPSVectors:
    def test_fips197_appendix_b(self):
        # FIPS-197 Appendix B worked example.
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1(self):
        # FIPS-197 Appendix C.1 example vector.
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        assert AES128(key).encrypt_block(plaintext) == expected

    def test_fips197_appendix_c1_decrypt(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        ciphertext = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        expected = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert AES128(key).decrypt_block(ciphertext) == expected


class TestRoundTrip:
    def test_encrypt_decrypt_roundtrip(self):
        cipher = AES128(b"0123456789abcdef")
        for value in range(16):
            block = bytes([value]) * 16
            assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_different_keys_give_different_ciphertexts(self):
        block = b"A" * 16
        c1 = AES128(b"k" * 16).encrypt_block(block)
        c2 = AES128(b"K" * 16).encrypt_block(block)
        assert c1 != c2

    def test_encryption_is_deterministic(self):
        cipher = AES128(b"x" * 16)
        assert cipher.encrypt_block(b"y" * 16) == cipher.encrypt_block(b"y" * 16)

    def test_avalanche_single_bit_change(self):
        cipher = AES128(b"k" * 16)
        base = cipher.encrypt_block(b"\x00" * 16)
        flipped = cipher.encrypt_block(b"\x01" + b"\x00" * 15)
        differing_bits = sum(bin(a ^ b).count("1") for a, b in zip(base, flipped))
        assert differing_bits > 30


class TestErrors:
    def test_wrong_key_size_rejected(self):
        with pytest.raises(EncryptionError):
            AES128(b"short")

    def test_wrong_block_size_rejected(self):
        cipher = AES128(b"0123456789abcdef")
        with pytest.raises(EncryptionError):
            cipher.encrypt_block(b"too-short")
        with pytest.raises(EncryptionError):
            cipher.decrypt_block(b"x" * 17)
