"""Chaos smoke test: kill a checkpointed run mid-grid, resume, compare.

CI runs this script with no arguments.  It:

1. computes an uninterrupted reference run of a small simulation grid;
2. re-runs the same grid in a subprocess that hard-kills itself
   (``os._exit``) right after the checkpoint manager has persisted the
   N-th completed point — a crash at a checkpoint boundary;
3. resumes from the survivor checkpoint file and asserts the final
   results — per-point stats fingerprints included — are bit-identical
   to the uninterrupted reference;
4. runs a process-pool grid whose workers are killed once each by
   :func:`repro.faults.chaos_kill_point` and asserts the retrying runner
   still completes every point correctly.

Exit code 0 means all chaos scenarios recovered bit-exactly.
"""

from __future__ import annotations

import argparse
import os
import random
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.backends import OramSpec, build_oram  # noqa: E402
from repro.core.config import ORAMConfig  # noqa: E402
from repro.core.types import Operation  # noqa: E402
from repro.faults import chaos_kill_point  # noqa: E402
from repro.runner import (  # noqa: E402
    CheckpointManager,
    ExperimentRunner,
    ExperimentSpec,
    derive_seed,
)

GRID_POINTS = 10
KILL_AFTER = 4
BASE_SEED = 29


def sim_point(working_set, num_accesses, seed):
    """One deterministic simulation point; the fingerprint is the value."""
    oram = build_oram(
        OramSpec(protocol="flat", storage="flat"),
        ORAMConfig(working_set_blocks=working_set),
        seed=seed,
    )
    rng = random.Random(seed ^ 0x9E3779B9)
    for index in range(num_accesses):
        oram.access(1 + rng.randrange(working_set), Operation.WRITE, data=index)
    return (oram.stats.fingerprint(), oram._stash.fingerprint())


def kill_once_point(value, marker_dir, seed=0):
    """Pool worker that dies once at a chaos kill point, then succeeds."""
    if value == 2:
        chaos_kill_point(marker_dir, "chaos-worker")
    return (value, random.Random(seed).getrandbits(32))


def grid_specs():
    return [
        ExperimentSpec(
            key=("chaos", index),
            fn=sim_point,
            kwargs={"working_set": 48 + 16 * (index % 3), "num_accesses": 300},
            seed=derive_seed(BASE_SEED, ("chaos", index)),
        )
        for index in range(GRID_POINTS)
    ]


def run_child(checkpoint_path: str) -> None:
    """Run the grid, dying right after the KILL_AFTER-th checkpointed save."""
    manager = CheckpointManager(checkpoint_path, every=1)

    def die_at_boundary(done, total, result):
        # record() has already persisted this result (cadence is 1), so
        # this models a crash exactly at a checkpoint boundary.
        if done >= KILL_AFTER:
            os._exit(3)

    ExperimentRunner(progress=die_at_boundary).run(grid_specs(), checkpoint=manager)
    # Unreachable when the kill fires; failing loudly beats passing silently.
    os._exit(7)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--child", metavar="CKPT", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child:
        run_child(args.child)
        return 7  # pragma: no cover - run_child never returns

    reference = ExperimentRunner().run(grid_specs())
    assert all(result.ok for result in reference)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_path = os.path.join(tmp, "chaos.ckpt")
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", checkpoint_path],
            cwd=REPO_ROOT,
        )
        assert child.returncode == 3, f"child exited {child.returncode}, expected 3"
        survivor = CheckpointManager(checkpoint_path)
        assert survivor.completed == KILL_AFTER, (
            f"checkpoint holds {survivor.completed} points, expected {KILL_AFTER}"
        )
        print(f"[chaos] child killed after {survivor.completed} checkpointed points")

        resumed = ExperimentRunner().run(grid_specs(), checkpoint=survivor)
        assert [r.value for r in resumed] == [r.value for r in reference], (
            "resumed grid diverged from the uninterrupted reference"
        )
        assert [r.key for r in resumed] == [r.key for r in reference]
        print(f"[chaos] resume matched the uninterrupted run on all {GRID_POINTS} points")

    with tempfile.TemporaryDirectory() as tmp:
        specs = [
            ExperimentSpec(
                key=("kill", value),
                fn=kill_once_point,
                kwargs={"value": value, "marker_dir": tmp},
                seed=derive_seed(BASE_SEED, ("kill", value)),
            )
            for value in range(6)
        ]
        serial = ExperimentRunner().run(
            [spec for spec in specs if spec.kwargs["value"] != 2]
        )
        pooled = ExperimentRunner(executor="process", max_workers=2).run(specs)
        assert all(result.ok for result in pooled), [
            (result.key, result.error) for result in pooled if not result.ok
        ]
        assert os.path.exists(os.path.join(tmp, "chaos-worker.marker")), (
            "the chaos kill point never fired"
        )
        by_key = {result.key: result.value for result in pooled}
        for result in serial:
            assert by_key[result.key] == result.value
        print("[chaos] killed pool worker retried; grid completed with correct values")

    print("[chaos] all chaos scenarios recovered bit-exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
