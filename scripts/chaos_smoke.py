"""Chaos smoke test: kill a checkpointed run mid-grid, resume, compare.

CI runs this script with no arguments.  It:

1. computes an uninterrupted reference run of a small simulation grid;
2. re-runs the same grid in a subprocess that hard-kills itself
   (``os._exit``) right after the checkpoint manager has persisted the
   N-th completed point — a crash at a checkpoint boundary;
3. resumes from the survivor checkpoint file and asserts the final
   results — per-point stats fingerprints included — are bit-identical
   to the uninterrupted reference;
4. runs a process-pool grid whose workers are killed once each by
   :func:`repro.faults.chaos_kill_point` and asserts the retrying runner
   still completes every point correctly;
5. hard-kills (``os._exit``) a subprocess in the middle of a durable
   ``memmap-flat`` commit — after the new epoch's data pages are on disk
   but before the generation header flips — then recovers the tree file,
   restores the pre-crash snapshot and asserts the resumed run is
   bit-identical (stats, stash and column fingerprints) to an
   uninterrupted reference.  Skipped with a notice when NumPy is absent.

Exit code 0 means all chaos scenarios recovered bit-exactly.
"""

from __future__ import annotations

import argparse
import os
import pickle
import random
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.backends import OramSpec, build_oram  # noqa: E402
from repro.core.config import ORAMConfig  # noqa: E402
from repro.core.types import Operation  # noqa: E402
from repro.faults import chaos_kill_point  # noqa: E402
from repro.runner import (  # noqa: E402
    CheckpointManager,
    ExperimentRunner,
    ExperimentSpec,
    derive_seed,
)

GRID_POINTS = 10
KILL_AFTER = 4
BASE_SEED = 29

MEMMAP_SEED = 31
MEMMAP_WORKING_SET = 96
MEMMAP_W1 = 160
MEMMAP_W2 = 80

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    HAVE_NUMPY = False


def sim_point(working_set, num_accesses, seed):
    """One deterministic simulation point; the fingerprint is the value."""
    oram = build_oram(
        OramSpec(protocol="flat", storage="flat"),
        ORAMConfig(working_set_blocks=working_set),
        seed=seed,
    )
    rng = random.Random(seed ^ 0x9E3779B9)
    for index in range(num_accesses):
        oram.access(1 + rng.randrange(working_set), Operation.WRITE, data=index)
    return (oram.stats.fingerprint(), oram._stash.fingerprint())


def kill_once_point(value, marker_dir, seed=0):
    """Pool worker that dies once at a chaos kill point, then succeeds."""
    if value == 2:
        chaos_kill_point(marker_dir, "chaos-worker")
    return (value, random.Random(seed).getrandbits(32))


def grid_specs():
    return [
        ExperimentSpec(
            key=("chaos", index),
            fn=sim_point,
            kwargs={"working_set": 48 + 16 * (index % 3), "num_accesses": 300},
            seed=derive_seed(BASE_SEED, ("chaos", index)),
        )
        for index in range(GRID_POINTS)
    ]


def run_child(checkpoint_path: str) -> None:
    """Run the grid, dying right after the KILL_AFTER-th checkpointed save."""
    manager = CheckpointManager(checkpoint_path, every=1)

    def die_at_boundary(done, total, result):
        # record() has already persisted this result (cadence is 1), so
        # this models a crash exactly at a checkpoint boundary.
        if done >= KILL_AFTER:
            os._exit(3)

    ExperimentRunner(progress=die_at_boundary).run(grid_specs(), checkpoint=manager)
    # Unreachable when the kill fires; failing loudly beats passing silently.
    os._exit(7)


def _memmap_spec(base_dir: str):
    return OramSpec(protocol="flat", storage="memmap-flat", storage_path=base_dir)


def _memmap_config():
    return ORAMConfig(working_set_blocks=MEMMAP_WORKING_SET)


def _memmap_drive(oram, start: int, count: int) -> None:
    """A deterministic stretch of writes shared by child and reference."""
    rng = random.Random(MEMMAP_SEED ^ start)
    for index in range(start, start + count):
        oram.access(1 + rng.randrange(MEMMAP_WORKING_SET), Operation.WRITE, data=index)


def run_memmap_child(base_dir: str) -> None:
    """Die by ``os._exit`` in the middle of a durable commit.

    The crash hook fires at the ``header-write`` protocol point: the new
    epoch's column pages and checksum table are already written and
    fsynced, the sidecar is replaced, but the generation header has not
    flipped — the worst spot short of a torn header, with maximal on-disk
    divergence from the committed generation.
    """
    oram = build_oram(_memmap_spec(base_dir), _memmap_config(), seed=MEMMAP_SEED)
    _memmap_drive(oram, 0, MEMMAP_W1)
    snapshot = oram.snapshot()  # commits the post-W1 generation
    with open(os.path.join(base_dir, "snapshot.pkl"), "wb") as handle:
        pickle.dump(snapshot, handle)
    _memmap_drive(oram, MEMMAP_W1, MEMMAP_W2)

    def die_mid_commit(tag: str) -> None:
        if tag == "header-write":
            os._exit(3)

    oram.storage.set_crash_hook(die_mid_commit)
    oram.storage.commit()
    # Unreachable when the kill fires; failing loudly beats passing silently.
    os._exit(7)


def memmap_chaos_scenario() -> None:
    from repro.backends import restore_oram
    from repro.core.memmap_tree import MemmapTreeStorage, column_digest

    with tempfile.TemporaryDirectory() as tmp:
        child_dir = os.path.join(tmp, "crashed")
        os.makedirs(child_dir)
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--memmap-child", child_dir],
            cwd=REPO_ROOT,
        )
        assert child.returncode == 3, f"child exited {child.returncode}, expected 3"

        # Uninterrupted reference over the same deterministic trace.
        ref_dir = os.path.join(tmp, "reference")
        os.makedirs(ref_dir)
        reference = build_oram(_memmap_spec(ref_dir), _memmap_config(), seed=MEMMAP_SEED)
        _memmap_drive(reference, 0, MEMMAP_W1)
        committed_digest = column_digest(reference.storage)
        reference.snapshot()  # same commit the child's snapshot took
        _memmap_drive(reference, MEMMAP_W1, MEMMAP_W2)

        # Recovery: the crashed file must reopen at the committed
        # generation with bit-identical columns (journal rollback).
        tree_path = next(
            os.path.join(child_dir, name)
            for name in sorted(os.listdir(child_dir))
            if name.endswith(".tree")
        )
        recovered = MemmapTreeStorage.open(tree_path)
        assert column_digest(recovered) == committed_digest, (
            "recovered tree diverged from the committed generation"
        )
        generation = recovered.generation
        recovered.abandon()
        print(
            f"[chaos] memmap tree killed mid-commit recovered to "
            f"generation {generation} bit-identically"
        )

        # Resume: restoring the pre-crash snapshot and replaying the lost
        # window must match the uninterrupted reference exactly.
        with open(os.path.join(child_dir, "snapshot.pkl"), "rb") as handle:
            snapshot = pickle.load(handle)
        resumed = restore_oram(snapshot)
        _memmap_drive(resumed, MEMMAP_W1, MEMMAP_W2)
        assert resumed.stats.fingerprint() == reference.stats.fingerprint()
        assert resumed._stash.fingerprint() == reference._stash.fingerprint()
        assert column_digest(resumed.storage) == column_digest(reference.storage)
        resumed.storage.abandon()
        reference.storage.abandon()
        print(
            "[chaos] memmap snapshot resume replayed the lost window "
            "bit-identically to the uninterrupted run"
        )


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--child", metavar="CKPT", help=argparse.SUPPRESS)
    parser.add_argument("--memmap-child", metavar="DIR", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child:
        run_child(args.child)
        return 7  # pragma: no cover - run_child never returns
    if args.memmap_child:
        run_memmap_child(args.memmap_child)
        return 7  # pragma: no cover - run_memmap_child never returns

    reference = ExperimentRunner().run(grid_specs())
    assert all(result.ok for result in reference)

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint_path = os.path.join(tmp, "chaos.ckpt")
        child = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--child", checkpoint_path],
            cwd=REPO_ROOT,
        )
        assert child.returncode == 3, f"child exited {child.returncode}, expected 3"
        survivor = CheckpointManager(checkpoint_path)
        assert survivor.completed == KILL_AFTER, (
            f"checkpoint holds {survivor.completed} points, expected {KILL_AFTER}"
        )
        print(f"[chaos] child killed after {survivor.completed} checkpointed points")

        resumed = ExperimentRunner().run(grid_specs(), checkpoint=survivor)
        assert [r.value for r in resumed] == [r.value for r in reference], (
            "resumed grid diverged from the uninterrupted reference"
        )
        assert [r.key for r in resumed] == [r.key for r in reference]
        print(f"[chaos] resume matched the uninterrupted run on all {GRID_POINTS} points")

    with tempfile.TemporaryDirectory() as tmp:
        specs = [
            ExperimentSpec(
                key=("kill", value),
                fn=kill_once_point,
                kwargs={"value": value, "marker_dir": tmp},
                seed=derive_seed(BASE_SEED, ("kill", value)),
            )
            for value in range(6)
        ]
        serial = ExperimentRunner().run([spec for spec in specs if spec.kwargs["value"] != 2])
        pooled = ExperimentRunner(executor="process", max_workers=2).run(specs)
        assert all(result.ok for result in pooled), [
            (result.key, result.error) for result in pooled if not result.ok
        ]
        assert os.path.exists(os.path.join(tmp, "chaos-worker.marker")), (
            "the chaos kill point never fired"
        )
        by_key = {result.key: result.value for result in pooled}
        for result in serial:
            assert by_key[result.key] == result.value
        print("[chaos] killed pool worker retried; grid completed with correct values")

    if HAVE_NUMPY:
        memmap_chaos_scenario()
    else:
        print("[chaos] NumPy unavailable: memmap hard-kill scenario skipped")

    print("[chaos] all chaos scenarios recovered bit-exactly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
